package workload

import (
	"cellpilot/internal/cluster"
	"cellpilot/internal/cml"
	"cellpilot/internal/sim"
)

// CMLPingPong measures the Cell Messaging Layer baseline on the same
// remote SPE↔SPE exchange as CellPilot's type-5 PingPong: rank 0 on one
// blade, rank 1 on another, one message bouncing. Returned as one-way
// latency for direct comparison with Table II.
func CMLPingPong(bytes, reps int) (sim.Time, error) {
	clu, err := cluster.New(cluster.Spec{CellNodes: 2, Seed: 7})
	if err != nil {
		return 0, err
	}
	w, err := cml.NewWorld(clu, 1)
	if err != nil {
		return 0, err
	}
	payload := make([]byte, bytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	rounds := reps + 1
	var total sim.Time
	err = w.Run(func(ctx *cml.Ctx) {
		if ctx.Rank() == 0 {
			var start sim.Time
			for r := 0; r < rounds; r++ {
				if r == 1 {
					start = ctx.P.Now()
				}
				ctx.Send(1, payload)
				ctx.Recv(1)
			}
			total = ctx.P.Now() - start
		} else {
			for r := 0; r < rounds; r++ {
				got := ctx.Recv(0)
				ctx.Send(0, got)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return total / sim.Time(2*reps), nil
}
