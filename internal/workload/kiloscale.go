package workload

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"

	"cellpilot/internal/cluster"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
)

// kiloNodesPerReplica is the smallest topology the pingpong and chaos
// traffic patterns support (two Cell blades plus one Xeon front-end).
// A kiloscale run tiles the node budget with independent replicas of it.
const kiloNodesPerReplica = ChaosNodes

// KiloscaleConfig describes a thousand-node experiment: the node budget is
// tiled into independent 3-node cluster replicas, each running the chosen
// workload with its own derived seed, and the replicas execute as unlinked
// logical processes on a sim.Sharded runtime — the scaling story for the
// parallel kernel. Replicas never exchange messages, so the safe-time
// protocol imposes no waiting; the run's wall-clock cost divides across
// host workers while every per-replica outcome stays bit-for-bit
// deterministic regardless of worker count.
type KiloscaleConfig struct {
	// Nodes is the total simulated-node budget (default 1000). It is
	// rounded up to a whole number of 3-node replicas.
	Nodes int
	// Workload selects the per-replica traffic: "pingpong" (default) or
	// "chaos".
	Workload string
	// Workers is the host worker count: 0 means one per host core
	// (runtime.NumCPU), 1 is the sequential reference arm.
	Workers int
	// Seed is the base seed; replica i derives seed Seed + i*1000003.
	Seed int64
	// Reps is the per-replica round-trip count (default 50 pingpong,
	// 5 chaos — the kiloscale axis is replica count, not depth).
	Reps int
	// Host, when non-nil, absorbs every replica's host-cost snapshot into
	// one fleet-wide profile (hostprof.Snapshot.Shards = replica count).
	Host *hostprof.Profiler
}

// KiloscaleResult is one kiloscale run's outcome.
type KiloscaleResult struct {
	Config KiloscaleConfig
	// Replicas is the number of independent cluster replicas run.
	Replicas int
	// SimNodes is the simulated-node count actually instantiated
	// (Replicas * 3, >= Config.Nodes).
	SimNodes int
	// Workers is the resolved host worker count.
	Workers int
	// Fingerprint is an FNV-64a digest over the ordered per-replica
	// outcome lines; equality across worker counts is the parallel
	// determinism contract.
	Fingerprint string
	// VirtualTime is the largest per-replica final virtual clock — the
	// fleet finishes when its slowest replica does.
	VirtualTime sim.Time
	// Events is the total kernel events dispatched across all replicas.
	Events uint64
}

func (c KiloscaleConfig) withDefaults() KiloscaleConfig {
	if c.Nodes == 0 {
		c.Nodes = 1000
	}
	if c.Workload == "" {
		c.Workload = "pingpong"
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Reps == 0 {
		if c.Workload == "chaos" {
			c.Reps = 5
		} else {
			c.Reps = 50
		}
	}
	return c
}

// replicaSeed spaces replica seeds far apart so neighbouring replicas do
// not share RNG prefixes.
func (c KiloscaleConfig) replicaSeed(i int) int64 {
	return c.Seed + int64(i)*1_000_003
}

// Kiloscale runs the configured fleet and reports the aggregate outcome.
func Kiloscale(cfg KiloscaleConfig) (KiloscaleResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload != "pingpong" && cfg.Workload != "chaos" {
		return KiloscaleResult{}, fmt.Errorf("kiloscale: unknown workload %q (want pingpong or chaos)", cfg.Workload)
	}
	replicas := (cfg.Nodes + kiloNodesPerReplica - 1) / kiloNodesPerReplica
	if replicas < 1 {
		replicas = 1
	}

	// Outcome slots are indexed by replica, so the result is independent
	// of host completion order.
	lines := make([]string, replicas)
	vts := make([]sim.Time, replicas)
	snaps := make([]hostprof.Snapshot, replicas)

	s := sim.NewSharded(cfg.Workers)
	for i := 0; i < replicas; i++ {
		i := i
		s.AddLP(fmt.Sprintf("replica%d", i), func(lp *sim.LP) error {
			h := hostprof.New(0)
			seed := cfg.replicaSeed(i)
			spec := &cluster.Spec{CellNodes: 2, XeonNodes: 1, Seed: seed}
			switch cfg.Workload {
			case "chaos":
				res, err := Chaos(ChaosConfig{
					Seed:         seed,
					Reps:         cfg.Reps,
					LossProb:     0.05,
					MailboxDrops: 2,
					Host:         h,
					Spec:         spec,
				})
				if err != nil {
					return fmt.Errorf("replica %d: %w", i, err)
				}
				fp := fnv.New64a()
				fp.Write([]byte(res.Fingerprint()))
				lines[i] = fmt.Sprintf("rep=%d chaos fp=%016x vt=%d", i, fp.Sum64(), int64(res.VirtualTime))
				vts[i] = res.VirtualTime
			default:
				typ := 1 + i%5 // cycle the five Table I channel types across the fleet
				res, err := PingPong(PingPongConfig{
					Type:   typ,
					Bytes:  256,
					Method: MethodCellPilot,
					Reps:   cfg.Reps,
					Host:   h,
					Spec:   spec,
				})
				if err != nil {
					return fmt.Errorf("replica %d: %w", i, err)
				}
				lines[i] = fmt.Sprintf("rep=%d type=%d oneway=%d", i, typ, int64(res.OneWay))
				// The timed window is Reps round trips of 2*OneWay each.
				vts[i] = res.OneWay * sim.Time(2*cfg.Reps)
			}
			snaps[i] = h.Snapshot()
			return nil
		})
	}
	if err := s.Run(); err != nil {
		return KiloscaleResult{}, err
	}

	out := KiloscaleResult{
		Config:   cfg,
		Replicas: replicas,
		SimNodes: replicas * kiloNodesPerReplica,
		Workers:  cfg.Workers,
	}
	fp := fnv.New64a()
	fp.Write([]byte(strings.Join(lines, "\n")))
	out.Fingerprint = fmt.Sprintf("%016x", fp.Sum64())
	for i := range vts {
		if vts[i] > out.VirtualTime {
			out.VirtualTime = vts[i]
		}
		out.Events += snaps[i].Events
		if cfg.Host != nil {
			cfg.Host.Absorb(snaps[i])
		}
	}
	return out, nil
}
