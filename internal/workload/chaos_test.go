package workload

import (
	"strings"
	"testing"

	"cellpilot/internal/hostprof"
)

// TestChaosDeterminism: the full chaos scenario — lossy links, an SPE
// kill, and mailbox drops at once — must be bit-for-bit reproducible.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, LossProb: 0.1, KillSPE: true, MailboxDrops: 3}
	a, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("chaos run not deterministic:\n--- run A ---\n%s\n--- run B ---\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
}

// TestChaosKillDegradation: killing the type-4 writer SPE mid-run faults
// only the type-4 flow; the other four channel types complete in full and
// the run reports a structured fault summary.
func TestChaosKillDegradation(t *testing.T) {
	r, err := Chaos(ChaosConfig{Seed: 3, KillSPE: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []int{1, 2, 3, 5} {
		if r.Completed[typ] != 20 {
			t.Errorf("type %d completed %d/20 round trips; kill should not touch it", typ, r.Completed[typ])
		}
	}
	if r.Completed[4] >= 20 {
		t.Errorf("type 4 completed all %d round trips despite its writer being killed", r.Completed[4])
	}
	if r.Counts.ProcsKilled != 1 {
		t.Errorf("ProcsKilled = %d, want 1", r.Counts.ProcsKilled)
	}
	if len(r.Killed) != 1 || !strings.Contains(r.Killed[0], "c4w#2") {
		t.Errorf("Killed = %v, want the c4w#2 stub", r.Killed)
	}
	if r.RunErr == "" {
		t.Error("Run returned nil despite a killed SPE; want a fault summary")
	}
}

// TestChaosLossyAllTypes: a 10% lossy inter-node link must not lose any
// traffic — all five channel types deliver every round trip, with the
// recovery visible in the retry counters and the metrics dump.
func TestChaosLossyAllTypes(t *testing.T) {
	r, err := Chaos(ChaosConfig{Seed: 42, LossProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for typ := 1; typ <= 5; typ++ {
		if r.Completed[typ] != 20 {
			t.Errorf("type %d completed %d/20 round trips under 10%% loss", typ, r.Completed[typ])
		}
	}
	if r.RunErr != "" {
		t.Errorf("lossy run should recover cleanly, got error: %s", r.RunErr)
	}
	if r.Counts.LinkDrops == 0 {
		t.Error("no link drops recorded; the loss policy did not engage")
	}
	if r.Counts.Retransmits == 0 {
		t.Error("no retransmits recorded; drops were not recovered by retry")
	}
	found := false
	for _, line := range r.MetricsFaultLines {
		if strings.HasPrefix(line, "fault/retransmits") {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics dump lacks fault/retransmits: %v", r.MetricsFaultLines)
	}
}

// TestChaosMailboxFaults: dropped SPE descriptor words are recovered by
// the sequence/ACK repost protocol without losing any round trips.
func TestChaosMailboxFaults(t *testing.T) {
	r, err := Chaos(ChaosConfig{Seed: 9, MailboxDrops: 4})
	if err != nil {
		t.Fatal(err)
	}
	for typ := 1; typ <= 5; typ++ {
		if r.Completed[typ] != 20 {
			t.Errorf("type %d completed %d/20 round trips under mailbox drops", typ, r.Completed[typ])
		}
	}
	if r.RunErr != "" {
		t.Errorf("mailbox-fault run should recover cleanly, got error: %s", r.RunErr)
	}
	if r.Counts.MailboxDrops == 0 {
		t.Error("no mailbox drops recorded; events did not arm")
	}
	if r.Counts.MailboxReposts == 0 {
		t.Error("no reposts recorded; dropped descriptors were not retried")
	}
}

// TestChaosSweep: several seeds of the combined scenario all uphold the
// degradation contract (untouched flows complete; run never panics).
func TestChaosSweep(t *testing.T) {
	rs, err := ChaosSweep(ChaosConfig{LossProb: 0.1, KillSPE: true, MailboxDrops: 2, Reps: 10},
		[]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		for _, typ := range []int{1, 2, 3, 5} {
			if r.Completed[typ] != 10 {
				t.Errorf("seed %d: type %d completed %d/10", r.Config.Seed, typ, r.Completed[typ])
			}
		}
		if r.RunErr == "" {
			t.Errorf("seed %d: no fault summary despite kill", r.Config.Seed)
		}
	}
}

// TestChaosHostProfDeterminism: attaching the wall-clock host profiler —
// stride 1, so every slice is timed — must leave the same-seed chaos
// fingerprint bit-for-bit identical. Wall-clock observation lives strictly
// outside the virtual timeline.
func TestChaosHostProfDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, LossProb: 0.1, KillSPE: true, MailboxDrops: 3}
	bare, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := hostprof.New(1)
	cfg.Host = h
	probed, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Fingerprint() != probed.Fingerprint() {
		t.Fatalf("host profiler perturbed the chaos run:\n--- bare ---\n%s\n--- probed ---\n%s",
			bare.Fingerprint(), probed.Fingerprint())
	}
	if snap := h.Snapshot(); snap.Events == 0 {
		t.Fatal("host profiler attached but saw no events")
	}
	// Even a profiler deliberately burning allocations per event (the
	// regression-guard injection knob) must not move the virtual outcome.
	burned := hostprof.New(1)
	burned.BurnAllocBytes = 512
	cfg.Host = burned
	slow, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Fingerprint() != slow.Fingerprint() {
		t.Fatal("alloc-burning profiler perturbed the chaos fingerprint")
	}
}
