package workload

import (
	"testing"

	"cellpilot/internal/core"
)

// The acceptance contract of the transfer engine: at ≥64 KiB the pipelined
// path at least doubles p50 bandwidth on the internode SPE types (3 and 5),
// while small payloads keep the exact paper-faithful latency everywhere.
func TestSizeSweepSpeedupContract(t *testing.T) {
	points, err := SizeSweep(SizeSweepConfig{Reps: 10, Sizes: []int{256, 65536}})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		typ, bytes int
		chunked    bool
	}
	byKey := map[key]SizeSweepPoint{}
	for _, p := range points {
		byKey[key{p.Type, p.Bytes, p.Chunked}] = p
	}
	for _, typ := range []int{3, 5} {
		base := byKey[key{typ, 65536, false}]
		chunked := byKey[key{typ, 65536, true}]
		if chunked.BandwidthMBps < 2*base.BandwidthMBps {
			t.Errorf("type%d 64KiB: chunked %.1f MB/s < 2x baseline %.1f MB/s",
				typ, chunked.BandwidthMBps, base.BandwidthMBps)
		}
	}
	for typ := 1; typ <= 5; typ++ {
		base := byKey[key{typ, 256, false}]
		chunked := byKey[key{typ, 256, true}]
		if chunked.OneWayP50 > base.OneWayP50 {
			t.Errorf("type%d 256B: chunked p50 %v worse than baseline %v",
				typ, chunked.OneWayP50, base.OneWayP50)
		}
	}
}

// A chunked chaos run — lossy links under concurrent five-type traffic with
// payloads past the eager bound, so the internode flows stream — must be
// bit-for-bit deterministic.
func TestChaosChunkedDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		Seed: 5, LossProb: 0.15, Bytes: 32768, Reps: 6,
		Transfer: core.TransferOptions{ChunkSize: 8192},
	}
	r1, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatalf("chunked chaos run not deterministic:\n--- run 1:\n%s\n--- run 2:\n%s",
			r1.Fingerprint(), r2.Fingerprint())
	}
	done := 0
	for typ := 1; typ <= 5; typ++ {
		done += r1.Completed[typ]
	}
	if done == 0 {
		t.Fatalf("no flow completed any round trip: %+v", r1)
	}
}
