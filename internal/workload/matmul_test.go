package workload

import (
	"strings"
	"testing"
)

func TestMatMulMatchesSequential(t *testing.T) {
	cfg := MatMulConfig{N: 64, Workers: 8, Seed: 21}
	par, err := MatMul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMulSequential(cfg)
	for i := range want {
		if par.C[i] != want[i] {
			t.Fatalf("C[%d] = %g, want %g", i, par.C[i], want[i])
		}
	}
	if par.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestMatMulMoreWorkersFaster(t *testing.T) {
	// With a compute-bound problem (slow SPU model), the farm scales.
	t2, err := MatMul(MatMulConfig{N: 64, Workers: 2, FlopsPerSec: 2e7})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := MatMul(MatMulConfig{N: 64, Workers: 8, FlopsPerSec: 2e7})
	if err != nil {
		t.Fatal(err)
	}
	if t8.Elapsed >= t2.Elapsed {
		t.Fatalf("8 workers (%s) not faster than 2 (%s)", t8.Elapsed, t2.Elapsed)
	}
}

func TestMatMulCommunicationBoundAtSmallSizes(t *testing.T) {
	// At realistic SPU speed a 64x64 multiply is communication-bound:
	// adding workers adds serialized Co-Pilot transfers and *slows down*
	// — the classic accelerator-offload pitfall, reproduced faithfully.
	t2, err := MatMul(MatMulConfig{N: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := MatMul(MatMulConfig{N: 64, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if t8.Elapsed <= t2.Elapsed {
		t.Fatalf("expected communication-bound slowdown: 8 workers %s vs 2 workers %s",
			t8.Elapsed, t2.Elapsed)
	}
}

func TestMatMulCrossBlade(t *testing.T) {
	// 32 workers span two blades: the second blade's SPEs are launched by
	// a host process there, and their channels are type 3.
	cfg := MatMulConfig{N: 128, Workers: 32, Seed: 4}
	par, err := MatMul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMulSequential(cfg)
	for i := range want {
		if par.C[i] != want[i] {
			t.Fatalf("C[%d] = %g, want %g", i, par.C[i], want[i])
		}
	}
}

func TestMatMulLSBudgetEnforced(t *testing.T) {
	// N=256 needs 4*(256*256 + ...) ≈ 278 KB of LS for B alone: too big.
	_, err := MatMul(MatMulConfig{N: 256, Workers: 8})
	if err == nil || !strings.Contains(err.Error(), "LS bytes") {
		t.Fatalf("err = %v", err)
	}
	if _, err := MatMul(MatMulConfig{N: 60, Workers: 8}); err == nil {
		t.Fatal("indivisible N accepted")
	}
}
