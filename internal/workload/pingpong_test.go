package workload

import (
	"fmt"
	"testing"
)

// runTable produces the full Table II grid at reduced reps for testing.
func runTable(t *testing.T, reps int) map[[3]int]Result {
	t.Helper()
	out := map[[3]int]Result{}
	for typ := 1; typ <= 5; typ++ {
		for _, bytes := range []int{1, 1600} {
			for _, m := range []Method{MethodCellPilot, MethodDMA, MethodCopy} {
				res, err := PingPong(PingPongConfig{Type: typ, Bytes: bytes, Method: m, Reps: reps})
				if err != nil {
					t.Fatalf("type %d %db %s: %v", typ, bytes, m, err)
				}
				out[[3]int{typ, bytes, int(m)}] = res
			}
		}
	}
	return out
}

func TestTable2Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in short mode")
	}
	grid := runTable(t, 100)
	t.Log("type bytes    CellPilot      DMA       Copy   (one-way us)")
	for typ := 1; typ <= 5; typ++ {
		for _, bytes := range []int{1, 1600} {
			cp := grid[[3]int{typ, bytes, 0}].OneWay.Micros()
			dma := grid[[3]int{typ, bytes, 1}].OneWay.Micros()
			cpy := grid[[3]int{typ, bytes, 2}].OneWay.Micros()
			t.Log(fmt.Sprintf("%4d %5d %10.1f %10.1f %10.1f", typ, bytes, cp, dma, cpy))
		}
	}

	// Shape invariants from paper Table II.
	for typ := 1; typ <= 5; typ++ {
		for _, bytes := range []int{1, 1600} {
			cp := grid[[3]int{typ, bytes, 0}].OneWay
			dma := grid[[3]int{typ, bytes, 1}].OneWay
			cpy := grid[[3]int{typ, bytes, 2}].OneWay
			if typ > 1 {
				// Every SPE-connected type pays Co-Pilot overhead.
				if cp <= dma || cp <= cpy {
					t.Errorf("type %d %dB: CellPilot (%s) should exceed hand-coded (%s dma / %s copy)",
						typ, bytes, cp, dma, cpy)
				}
			}
		}
	}
	// CellPilot latency ordering across types (1-byte column of Table II:
	// 59 < 105 < 112 < 140 < 189).
	order := []int{2, 1, 4, 3, 5}
	for i := 0; i+1 < len(order); i++ {
		a := grid[[3]int{order[i], 1, 0}].OneWay
		b := grid[[3]int{order[i+1], 1, 0}].OneWay
		if a >= b {
			t.Errorf("CellPilot 1B ordering violated: type %d (%s) >= type %d (%s)",
				order[i], a, order[i+1], b)
		}
	}
	// Figure 6 shape: hand-coded type-2 throughput dominates everything.
	best := grid[[3]int{2, 1600, 1}].ThroughputMBps
	for typ := 1; typ <= 5; typ++ {
		if cp := grid[[3]int{typ, 1600, 0}].ThroughputMBps; cp >= best {
			t.Errorf("type %d CellPilot throughput %.1f should be below hand-coded type-2 DMA %.1f", typ, cp, best)
		}
	}
}

func TestPingPongDeterministic(t *testing.T) {
	a, err := PingPong(PingPongConfig{Type: 5, Bytes: 1600, Method: MethodCellPilot, Reps: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PingPong(PingPongConfig{Type: 5, Bytes: 1600, Method: MethodCellPilot, Reps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.OneWay != b.OneWay {
		t.Fatalf("non-deterministic: %s vs %s", a.OneWay, b.OneWay)
	}
}

func TestPingPongValidation(t *testing.T) {
	if _, err := PingPong(PingPongConfig{Type: 0, Bytes: 1}); err == nil {
		t.Fatal("type 0 accepted")
	}
	if _, err := PingPong(PingPongConfig{Type: 6, Bytes: 1}); err == nil {
		t.Fatal("type 6 accepted")
	}
}
