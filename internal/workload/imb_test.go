package workload

import (
	"testing"

	"cellpilot/internal/sim"
)

func TestIMBPingPongMatchesHandType1(t *testing.T) {
	// The IMB PingPong at the raw-MPI level must agree with the Table II
	// hand-coded type-1 baseline — same code path, same model.
	imb, err := IMB(IMBConfig{Pattern: IMBPingPong, Bytes: 1600, Reps: 200})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PingPong(PingPongConfig{Type: 1, Bytes: 1600, Method: MethodDMA, Reps: 200})
	if err != nil {
		t.Fatal(err)
	}
	diff := imb.AvgTime - pp.OneWay
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*sim.Microsecond {
		t.Fatalf("IMB PingPong %s vs hand type-1 %s", imb.AvgTime, pp.OneWay)
	}
}

func TestIMBPatternsRun(t *testing.T) {
	for _, pat := range []IMBPattern{IMBPingPing, IMBSendRecv, IMBExchange, IMBBcast, IMBAllreduce} {
		ranks := 4
		if pat == IMBPingPing {
			ranks = 2
		}
		res, err := IMB(IMBConfig{Pattern: pat, Ranks: ranks, Bytes: 256, Reps: 50})
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if res.AvgTime <= 0 {
			t.Fatalf("%s: no time measured", pat)
		}
	}
	barrier, err := IMB(IMBConfig{Pattern: IMBBarrier, Ranks: 6, Reps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.AvgTime <= 0 || barrier.MBps != 0 {
		t.Fatalf("barrier result %+v", barrier)
	}
}

func TestIMBPingPingCostsMoreThanHalfPingPong(t *testing.T) {
	pp, err := IMB(IMBConfig{Pattern: IMBPingPong, Bytes: 1600, Reps: 100})
	if err != nil {
		t.Fatal(err)
	}
	ping, err := IMB(IMBConfig{Pattern: IMBPingPing, Bytes: 1600, Reps: 100})
	if err != nil {
		t.Fatal(err)
	}
	// PingPing sends collide on the NICs, so a full iteration must cost
	// at least the one-way PingPong time.
	if ping.AvgTime < pp.AvgTime {
		t.Fatalf("PingPing %s < PingPong one-way %s", ping.AvgTime, pp.AvgTime)
	}
}

func TestIMBBcastScalesWithRanks(t *testing.T) {
	t2, err := IMB(IMBConfig{Pattern: IMBBcast, Ranks: 2, Bytes: 1024, Reps: 50})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := IMB(IMBConfig{Pattern: IMBBcast, Ranks: 8, Bytes: 1024, Reps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if t8.AvgTime <= t2.AvgTime {
		t.Fatalf("8-rank bcast (%s) should cost more than 2-rank (%s)", t8.AvgTime, t2.AvgTime)
	}
	// Binomial tree: 8 ranks is 3 levels, so under ~4x the 2-rank time
	// even with contention.
	if t8.AvgTime > 5*t2.AvgTime {
		t.Fatalf("8-rank bcast (%s) not tree-like vs 2-rank (%s)", t8.AvgTime, t2.AvgTime)
	}
}

func TestIMBSweepAndValidation(t *testing.T) {
	res, err := IMBSweep(IMBPingPong, 2, []int{64, 1024, 8192}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].AvgTime >= res[2].AvgTime {
		t.Fatalf("sweep not monotone: %+v", res)
	}
	if _, err := IMB(IMBConfig{Pattern: IMBPingPong, Ranks: 3}); err == nil {
		t.Fatal("3-rank pingpong accepted")
	}
	if _, err := IMB(IMBConfig{Pattern: IMBBcast, Ranks: 1}); err == nil {
		t.Fatal("1-rank bcast accepted")
	}
}
