package workload

import (
	"fmt"

	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/sim"
)

// Block matrix multiplication — the canonical Cell BE demonstration
// workload — on CellPilot: the PPE coordinator broadcasts B, scatters row
// panels of A across SPE workers, each worker computes its C panel with
// the SPU (compute time charged per FLOP), and the panels are gathered
// back. Everything fits the 256 KB local-store budget by construction,
// which the configuration checks up front.

// MatMulConfig configures a run.
type MatMulConfig struct {
	// N is the (square) matrix dimension; must divide evenly by Workers.
	N int
	// Workers is the number of SPE workers.
	Workers int
	// Seed generates the input matrices.
	Seed int64
	// FlopsPerSec models SPU compute speed (default 25.6 GFLOP/s, one
	// Cell SPE's single-precision peak).
	FlopsPerSec float64
}

// MatMulResult reports a run.
type MatMulResult struct {
	C       []float32
	Elapsed sim.Time
	// LSHighWater is the largest message staged in any SPE local store.
	LSHighWater int
}

func (c MatMulConfig) withDefaults() MatMulConfig {
	if c.N == 0 {
		c.N = 64
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 21
	}
	if c.FlopsPerSec == 0 {
		c.FlopsPerSec = 25.6e9
	}
	return c
}

// matmulInputs generates deterministic A and B.
func matmulInputs(n int, seed int64) (a, b []float32) {
	a = make([]float32, n*n)
	b = make([]float32, n*n)
	s := uint32(seed)
	next := func() float32 {
		s = s*1664525 + 1013904223
		return float32(int32(s>>16)%100) / 10
	}
	for i := range a {
		a[i] = next()
		b[i] = next()
	}
	return a, b
}

// MatMulSequential is the reference implementation.
func MatMulSequential(cfg MatMulConfig) []float32 {
	cfg = cfg.withDefaults()
	a, b := matmulInputs(cfg.N, cfg.Seed)
	n := cfg.N
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}

// MatMul runs the block multiplication on a simulated Cell node with SPE
// workers over CellPilot channels.
func MatMul(cfg MatMulConfig) (MatMulResult, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n%cfg.Workers != 0 {
		return MatMulResult{}, fmt.Errorf("workload: N=%d not divisible by %d workers", n, cfg.Workers)
	}
	rows := n / cfg.Workers
	// LS budget check: B (n*n) + A panel + C panel must fit beside the
	// runtime; surface the constraint instead of failing mid-run.
	clu, err := cluster.New(cluster.Spec{CellNodes: (cfg.Workers + 15) / 16, Seed: cfg.Seed})
	if err != nil {
		return MatMulResult{}, err
	}
	par := clu.Params
	needed := 4 * (n*n + 2*rows*n)
	budget := par.LSSize - par.CellPilotFootprint - par.DefaultCodeSize - par.StackReserve
	if needed > budget {
		return MatMulResult{}, fmt.Errorf("workload: N=%d needs %d LS bytes for B and panels; only %d available (the paper's 256K discipline)",
			n, needed, budget)
	}
	if cfg.Workers > clu.TotalSPEs() {
		return MatMulResult{}, fmt.Errorf("workload: %d workers exceed %d SPEs", cfg.Workers, clu.TotalSPEs())
	}

	a, b := matmulInputs(n, cfg.Seed)
	app := core.NewApp(clu, core.Options{SPECollectives: true})
	toW := make([]*core.Channel, cfg.Workers)
	fromW := make([]*core.Channel, cfg.Workers)
	flops := 2 * rows * n * n
	computeTime := sim.Time(float64(flops) / cfg.FlopsPerSec * float64(sim.Second))

	worker := &core.SPEProgram{Name: "matmul", Body: func(ctx *core.SPECtx) {
		id := ctx.Arg()
		bm := make([]float32, n*n)
		ctx.Read(toW[id], fmt.Sprintf("%%%df", n*n), bm) // broadcast of B
		ap := make([]float32, rows*n)
		ctx.Read(toW[id], fmt.Sprintf("%%%df", rows*n), ap) // scatter of A panel
		ctx.P.Advance(computeTime)
		cp := make([]float32, rows*n)
		for i := 0; i < rows; i++ {
			for k := 0; k < n; k++ {
				aik := ap[i*n+k]
				for j := 0; j < n; j++ {
					cp[i*n+j] += aik * bm[k*n+j]
				}
			}
		}
		ctx.Write(fromW[id], fmt.Sprintf("%%%df", rows*n), cp)
	}}

	type speAssign struct {
		sp  *core.Process
		idx int
	}
	spes := make([]*core.Process, cfg.Workers)
	parents := map[int]*core.Process{}
	remote := map[int][]speAssign{}
	for i := 0; i < cfg.Workers; i++ {
		nodeID := i / 16 // 16 SPEs per blade
		parent := app.Main()
		if nodeID != 0 {
			if parents[nodeID] == nil {
				parents[nodeID] = app.CreateProcessOn(nodeID, fmt.Sprintf("host%d", nodeID),
					func(ctx *core.Ctx, _ int, arg any) {
						for _, as := range arg.([]speAssign) {
							ctx.RunSPE(as.sp, as.idx, nil)
						}
					}, 0, nil)
			}
			parent = parents[nodeID]
		}
		spes[i] = app.CreateSPE(worker, parent, i)
		if nodeID != 0 {
			remote[nodeID] = append(remote[nodeID], speAssign{spes[i], i})
		}
		toW[i] = app.CreateChannel(app.Main(), spes[i])
		fromW[i] = app.CreateChannel(spes[i], app.Main())
	}
	for nodeID, list := range remote {
		parents[nodeID].SetArg(list)
	}
	bcast := app.CreateBundle(core.BundleBroadcast, toW)
	scatter := app.CreateBundle(core.BundleScatter, toW)
	gather := app.CreateBundle(core.BundleGather, fromW)

	res := MatMulResult{C: make([]float32, n*n)}
	runErr := app.Run(func(ctx *core.Ctx) {
		start := ctx.Now()
		for i, sp := range spes {
			if sp.Parent() == app.Main() {
				ctx.RunSPE(sp, i, nil)
			}
		}
		ctx.Broadcast(bcast, fmt.Sprintf("%%%df", n*n), b)
		ctx.Scatter(scatter, fmt.Sprintf("%%%df", rows*n), a)
		ctx.Gather(gather, fmt.Sprintf("%%%df", rows*n), res.C)
		res.Elapsed = ctx.Elapsed(start)
	})
	if runErr != nil {
		return MatMulResult{}, runErr
	}
	res.LSHighWater = 4 * n * n
	return res, nil
}
