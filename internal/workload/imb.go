package workload

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sim"
)

// The paper measures with the Intel MPI Benchmarks' PingPong, "the
// classical pattern used for measuring startup and throughput of a single
// message sent between two processes". This file implements the wider
// classic IMB-MPI1 pattern set over the simulated MPI substrate, for
// benchmarking the transport underneath Pilot.

// IMBPattern selects a benchmark pattern.
type IMBPattern int

// IMB-MPI1 patterns.
const (
	// IMBPingPong: two ranks, one message bouncing (reports one-way time).
	IMBPingPong IMBPattern = iota
	// IMBPingPing: two ranks sending to each other simultaneously.
	IMBPingPing
	// IMBSendRecv: a periodic chain; each rank receives from the left and
	// sends to the right each iteration.
	IMBSendRecv
	// IMBExchange: each rank exchanges with both neighbours per iteration.
	IMBExchange
	// IMBBcast: root broadcasts to all ranks.
	IMBBcast
	// IMBAllreduce: all ranks combine a vector.
	IMBAllreduce
	// IMBBarrier: synchronization only (Bytes ignored).
	IMBBarrier
)

// String implements fmt.Stringer.
func (p IMBPattern) String() string {
	switch p {
	case IMBPingPong:
		return "PingPong"
	case IMBPingPing:
		return "PingPing"
	case IMBSendRecv:
		return "SendRecv"
	case IMBExchange:
		return "Exchange"
	case IMBBcast:
		return "Bcast"
	case IMBAllreduce:
		return "Allreduce"
	case IMBBarrier:
		return "Barrier"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// IMBConfig describes one IMB measurement.
type IMBConfig struct {
	Pattern IMBPattern
	// Ranks is the process count (2 for PingPong/PingPing).
	Ranks int
	// Bytes is the message size.
	Bytes int
	// Reps is the iteration count.
	Reps int
	// Params overrides the calibration.
	Params *cellbe.Params
	// Nodes overrides the cluster's node count. 0 keeps the default
	// (min(Ranks, 8), the paper testbed's Cell node count); larger values
	// build bigger clusters — the host benchmark's 64-node scenario uses
	// it to stress kernel scaling beyond the paper's testbed.
	Nodes int
	// Host, when non-nil, measures the run's host-side (wall-clock) cost.
	Host *hostprof.Profiler
}

// IMBResult is one measurement.
type IMBResult struct {
	Config IMBConfig
	// AvgTime is the per-iteration time (one-way for PingPong).
	AvgTime sim.Time
	// MBps is Bytes/AvgTime where meaningful.
	MBps float64
}

func (cfg IMBConfig) withDefaults() (IMBConfig, error) {
	switch cfg.Pattern {
	case IMBPingPong, IMBPingPing:
		if cfg.Ranks == 0 {
			cfg.Ranks = 2
		}
		if cfg.Ranks != 2 {
			return cfg, fmt.Errorf("workload: %s needs exactly 2 ranks", cfg.Pattern)
		}
	default:
		if cfg.Ranks == 0 {
			cfg.Ranks = 4
		}
		if cfg.Ranks < 2 {
			return cfg, fmt.Errorf("workload: %s needs at least 2 ranks", cfg.Pattern)
		}
	}
	if cfg.Reps == 0 {
		cfg.Reps = 1000
	}
	if cfg.Params == nil {
		cfg.Params = cellbe.DefaultParams()
	}
	return cfg, nil
}

// IMB runs one pattern on a fresh cluster (one PPE rank per Cell node,
// wrapping when ranks exceed nodes).
func IMB(cfg IMBConfig) (IMBResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return IMBResult{}, err
	}
	nodes := cfg.Ranks
	if nodes > 8 {
		nodes = 8 // the paper testbed's Cell node count
	}
	if cfg.Nodes > 0 {
		nodes = cfg.Nodes
	}
	clu, err := cluster.New(cluster.Spec{CellNodes: nodes, Params: cfg.Params, Seed: 5})
	if err != nil {
		return IMBResult{}, err
	}
	placements := make([]mpi.Placement, cfg.Ranks)
	for i := range placements {
		placements[i] = mpi.Placement{Node: i % nodes, Label: fmt.Sprintf("imb%d", i)}
	}
	w, err := mpi.NewWorld(clu, placements)
	if err != nil {
		return IMBResult{}, err
	}
	// This path drives raw MPI with no core.App, so the host profiler is
	// wired directly. Guarded: a typed-nil in the HostProbe interface
	// would defeat the kernel's nil fast path.
	if cfg.Host != nil {
		clu.K.SetHostProbe(cfg.Host)
		w.Host = cfg.Host
		clu.Net.SetHostProf(cfg.Host)
	}

	var total sim.Time
	rounds := cfg.Reps + 1 // one warmup round
	buf := make([]byte, cfg.Bytes)
	n := cfg.Ranks
	body := func(p *sim.Proc, id int) {
		r := w.Rank(id)
		var start sim.Time
		for it := 0; it < rounds; it++ {
			if it == 1 && id == 0 {
				start = p.Now()
			}
			switch cfg.Pattern {
			case IMBPingPong:
				if id == 0 {
					r.Send(p, 1, 0, buf)
					r.Recv(p, 1, 0)
				} else {
					data, _ := r.Recv(p, 0, 0)
					r.Send(p, 0, 0, data)
				}
			case IMBPingPing:
				r.Sendrecv(p, 1-id, 0, buf, 1-id, 0)
			case IMBSendRecv:
				right := (id + 1) % n
				left := (id - 1 + n) % n
				r.Sendrecv(p, right, 0, buf, left, 0)
			case IMBExchange:
				right := (id + 1) % n
				left := (id - 1 + n) % n
				q1 := r.Irecv(p, left, 1)
				q2 := r.Irecv(p, right, 2)
				s1 := r.Isend(p, right, 1, buf)
				s2 := r.Isend(p, left, 2, buf)
				r.Waitall(p, []*mpi.Request{q1, q2, s1, s2})
			case IMBBcast:
				var in []byte
				if id == 0 {
					in = buf
				}
				r.Bcast(p, 0, in)
			case IMBAllreduce:
				contrib := make([]byte, cfg.Bytes)
				r.Allreduce(p, contrib, func(acc, in []byte) {
					for i := range acc {
						acc[i] += in[i]
					}
				})
			case IMBBarrier:
				r.Barrier(p)
			}
		}
		if id == 0 {
			total = p.Now() - start
		}
	}
	for i := 0; i < cfg.Ranks; i++ {
		i := i
		clu.K.Spawn(fmt.Sprintf("imb%d", i), func(p *sim.Proc) { body(p, i) })
	}
	if err := clu.K.Run(); err != nil {
		return IMBResult{}, err
	}
	avg := total / sim.Time(cfg.Reps)
	if cfg.Pattern == IMBPingPong {
		avg /= 2 // IMB reports PingPong as one-way
	}
	res := IMBResult{Config: cfg, AvgTime: avg}
	if cfg.Bytes > 0 && avg > 0 && cfg.Pattern != IMBBarrier {
		res.MBps = float64(cfg.Bytes) / (float64(avg) / float64(sim.Second)) / 1e6
	}
	return res, nil
}

// IMBSweep runs a pattern across message sizes, IMB-style.
func IMBSweep(pattern IMBPattern, ranks int, sizes []int, reps int) ([]IMBResult, error) {
	var out []IMBResult
	for _, sz := range sizes {
		r, err := IMB(IMBConfig{Pattern: pattern, Ranks: ranks, Bytes: sz, Reps: reps})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
