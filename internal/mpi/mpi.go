// Package mpi is a from-scratch message-passing layer over the simulated
// cluster: ranks placed on node processors, tagged point-to-point
// communication with MPI matching semantics (wildcards, non-overtaking
// per sender), an eager/rendezvous protocol split, probes, and the
// collective operations Pilot builds on. It plays the role Open MPI 1.2.8
// played in the paper.
//
// Ranks are single-threaded (MPI_THREAD_SINGLE), exactly the constraint
// that drove the paper's Co-Pilot design: each rank must be driven by one
// sim proc, and the package enforces it.
package mpi

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/fault"
	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
)

// Wildcards for Recv and Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Placement locates one rank on a node.
type Placement struct {
	// Node is the index into the cluster's node list.
	Node int
	// Label names the rank's role for traces ("pilot", "copilot", "svc").
	Label string
}

// World is the set of ranks (MPI_COMM_WORLD) over a cluster.
type World struct {
	K     *sim.Kernel
	Clu   *cluster.Cluster
	Par   *cellbe.Params
	ranks []*Rank

	// Faults, when non-nil and carrying link policies, switches eager
	// remote sends on faulty links to the stop-and-wait reliability layer
	// (reliable.go). Nil — or an injector with no link policies — leaves
	// every path bit-identical to the unhardened build.
	Faults *fault.Injector
	rel    map[relKey]*relState

	// Flow, when non-nil, observes every delivered message as (source
	// node, destination node, bytes) — the node×node traffic matrix feed.
	// Local deliveries land on the diagonal. Purely observational: it
	// never advances virtual time.
	Flow func(srcNode, dstNode, bytes int)

	// Host, when non-nil, receives wall-clock attribution frames around
	// the MPI entry points (hostprof). Pure host-side bookkeeping: it
	// never advances virtual time, so instrumented runs stay bit-identical.
	Host *hostprof.Profiler
}

// NewWorld creates a world with one rank per placement, in rank order.
func NewWorld(c *cluster.Cluster, placements []Placement) (*World, error) {
	w := &World{K: c.K, Clu: c, Par: c.Params}
	for i, pl := range placements {
		if pl.Node < 0 || pl.Node >= len(c.Nodes) {
			return nil, fmt.Errorf("mpi: rank %d placed on unknown node %d", i, pl.Node)
		}
		w.ranks = append(w.ranks, &Rank{
			w:    w,
			id:   i,
			node: c.Nodes[pl.Node],
			lbl:  pl.Label,
		})
	}
	return w, nil
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank {
	if i < 0 || i >= len(w.ranks) {
		panic(fmt.Sprintf("mpi: no rank %d in world of size %d", i, len(w.ranks)))
	}
	return w.ranks[i]
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	node *cellbe.Node
	lbl  string

	owner      *sim.Proc // the single proc driving this rank
	posted     []*recvReq
	unexpected unexpectedQueue
	probes     []*probeReq
	arrival    func() // OnArrival hook
	nextXfer   int64  // TagNextXfer value consumed by the next send
}

// ID reports the rank number.
func (r *Rank) ID() int { return r.id }

// Node reports the node hosting the rank.
func (r *Rank) Node() *cellbe.Node { return r.node }

// Label reports the rank's role label.
func (r *Rank) Label() string { return r.lbl }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// bind enforces MPI_THREAD_SINGLE: the first proc to use the rank owns it.
func (r *Rank) bind(p *sim.Proc) {
	if r.owner == nil {
		r.owner = p
		return
	}
	if r.owner != p {
		p.Fatalf("mpi: rank %d (%s) used by proc %q but owned by %q (MPI_THREAD_SINGLE)",
			r.id, r.lbl, p.Name(), r.owner.Name())
	}
}

// TagNextXfer attaches an observability transfer id to the next send (or
// nonblocking send) issued on this rank. The id rides the envelope
// out-of-band — it adds no bytes and no virtual time — and surfaces in the
// receiver's Status, which is how CellPilot correlates the two ends of a
// transfer into one trace span. Zero means untagged.
func (r *Rank) TagNextXfer(id int64) { r.nextXfer = id }

// takeXfer consumes the pending transfer id.
func (r *Rank) takeXfer() int64 {
	id := r.nextXfer
	r.nextXfer = 0
	return id
}

// Status describes a received or probed message.
type Status struct {
	Source int
	Tag    int
	Count  int
	// Xfer is the sender's observability transfer id (see TagNextXfer);
	// 0 when the send was untagged.
	Xfer int64
}
