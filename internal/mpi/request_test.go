package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"cellpilot/internal/sim"
)

func TestIsendIrecvEager(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		buf := []byte("nonblocking")
		q := w.Rank(0).Isend(p, 2, 3, buf)
		// Eager: the buffer is snapshotted; mutating it must not affect
		// the message.
		buf[0] = 'X'
		w.Rank(0).Wait(p, q)
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		q := w.Rank(2).Irecv(p, 0, 3)
		data, st := w.Rank(2).Wait(p, q)
		if string(data) != "nonblocking" || st.Source != 0 {
			p.Fatalf("got %q %+v", data, st)
		}
	})
	run(t, c)
}

func TestIsendRendezvousOverlapsCompute(t *testing.T) {
	c, w := newWorld(t)
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = byte(i)
	}
	var computeDone, sendDone sim.Time
	c.K.Spawn("r0", func(p *sim.Proc) {
		q := w.Rank(0).Isend(p, 2, 3, big)
		p.Advance(30 * sim.Millisecond) // compute while the send is pending
		computeDone = p.Now()
		w.Rank(0).Wait(p, q)
		sendDone = p.Now()
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		p.Advance(10 * sim.Millisecond)
		data, _ := w.Rank(2).Recv(p, 0, 3)
		if !bytes.Equal(data, big) {
			p.Fatalf("rendezvous payload corrupted")
		}
	})
	run(t, c)
	if computeDone < 30*sim.Millisecond {
		t.Fatalf("compute blocked by Isend: done at %s", computeDone)
	}
	// The rendezvous completed during the compute window (receiver posted
	// at 10ms), so Wait should return promptly after it.
	if sendDone < computeDone {
		t.Fatalf("impossible times: %s < %s", sendDone, computeDone)
	}
}

func TestTestPolling(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		p.Advance(5 * sim.Millisecond)
		w.Rank(0).Send(p, 2, 1, []byte("late"))
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		q := w.Rank(2).Irecv(p, 0, 1)
		polls := 0
		for !w.Rank(2).Test(p, q) {
			polls++
			p.Advance(sim.Millisecond)
		}
		if polls == 0 {
			p.Fatalf("message available immediately; Test untested")
		}
		data, _ := w.Rank(2).Wait(p, q)
		if string(data) != "late" {
			p.Fatalf("got %q", data)
		}
	})
	run(t, c)
}

func TestSendrecvCrossedPairNoDeadlock(t *testing.T) {
	c, w := newWorld(t)
	// Both sides use rendezvous-sized payloads; plain Send would deadlock.
	big0 := bytes.Repeat([]byte{1}, 32*1024)
	big2 := bytes.Repeat([]byte{2}, 32*1024)
	c.K.Spawn("r0", func(p *sim.Proc) {
		got, _ := w.Rank(0).Sendrecv(p, 2, 5, big0, 2, 6)
		if !bytes.Equal(got, big2) {
			p.Fatalf("r0 got wrong payload")
		}
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		got, _ := w.Rank(2).Sendrecv(p, 0, 6, big2, 0, 5)
		if !bytes.Equal(got, big0) {
			p.Fatalf("r2 got wrong payload")
		}
	})
	run(t, c)
}

func TestIrecvIntoBuffer(t *testing.T) {
	c, w := newWorld(t)
	dst := make([]byte, 8)
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, []byte("12345678"))
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		q := w.Rank(1).IrecvInto(p, 0, 1, dst)
		w.Rank(1).Wait(p, q)
	})
	run(t, c)
	if string(dst) != "12345678" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestScatterCollective(t *testing.T) {
	c, w := newWorld(t)
	chunks := make([][]byte, w.Size())
	for i := range chunks {
		chunks[i] = []byte(fmt.Sprintf("chunk-%d", i))
	}
	for i := 0; i < w.Size(); i++ {
		i := i
		c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			var in [][]byte
			if i == 1 {
				in = chunks
			}
			got := w.Rank(i).Scatter(p, 1, in)
			if string(got) != fmt.Sprintf("chunk-%d", i) {
				p.Fatalf("rank %d got %q", i, got)
			}
		})
	}
	run(t, c)
}

func TestAllgather(t *testing.T) {
	c, w := newWorld(t)
	for i := 0; i < w.Size(); i++ {
		i := i
		c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			all := w.Rank(i).Allgather(p, bytes.Repeat([]byte{byte(i)}, i+1))
			if len(all) != w.Size() {
				p.Fatalf("rank %d: %d parts", i, len(all))
			}
			for j, part := range all {
				if len(part) != j+1 || (j+1 > 0 && part[0] != byte(j)) {
					p.Fatalf("rank %d part %d = %v", i, j, part)
				}
			}
		})
	}
	run(t, c)
}

func TestAlltoall(t *testing.T) {
	c, w := newWorld(t)
	n := w.Size()
	for i := 0; i < n; i++ {
		i := i
		c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			send := make([][]byte, n)
			for j := range send {
				send[j] = []byte{byte(i), byte(j)} // (from, to)
			}
			got := w.Rank(i).Alltoall(p, send)
			for j, part := range got {
				if len(part) != 2 || part[0] != byte(j) || part[1] != byte(i) {
					p.Fatalf("rank %d from %d = %v", i, j, part)
				}
			}
		})
	}
	run(t, c)
}
