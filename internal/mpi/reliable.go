package mpi

import (
	"cellpilot/internal/sim"
)

// Stop-and-wait reliability for eager remote sends over lossy links.
//
// The fault injector can drop, corrupt, or delay frames on configured
// directed links. Plain eager delivery would silently lose those messages,
// so when a send crosses a link with a fault policy the world routes it
// through a per-(source rank, destination rank) stop-and-wait protocol:
// each frame carries a sequence number, the receiver acks in order, and
// the sender retransmits on an exponentially backed-off timeout until the
// ack arrives or the attempt budget is exhausted. Acks are 4-byte frames
// charged analytically (serialization + propagation, no NIC booking) and
// are themselves subject to the reverse link's fault policy.
//
// Scope: only *eager remote* sends traverse the injector's lossy links as
// discrete frames. The rendezvous path's RTS/CTS/data phases are modelled
// analytically and documented as reliable (see docs/ROBUSTNESS.md), and
// intra-node traffic never touches the fabric.
//
// When the sender exhausts relMaxAttempts the directed pair is severed:
// the queue is dropped, subsequent sends on the pair are counted and
// discarded, and the receiver's sequence expectations can never wedge on
// a gap.

const (
	// relAckBytes is the wire size of an ack frame.
	relAckBytes = 4
	// relMaxAttempts bounds transmissions of one frame (1 original +
	// retransmits) before the pair is declared dead.
	relMaxAttempts = 12
	// relBackoffCap caps the exponential backoff multiplier at 2^relBackoffCap.
	relBackoffCap = 4
)

// relKey identifies a directed rank pair.
type relKey struct{ src, dst int }

// relFrame is one sequenced eager message awaiting acknowledgement.
type relFrame struct {
	seq uint32
	env *envelope
}

// relState is the shared protocol state of one directed rank pair: the
// sender-side queue and timer live at the source, the receiver-side
// expectation at the destination (one struct is fine — the sim is
// single-threaded).
type relState struct {
	// Sender side.
	sendq    []*relFrame // head is in flight; the rest wait for its ack
	nextSeq  uint32
	timer    *sim.Timer
	attempts int  // transmissions of the current head so far
	dead     bool // gave up: pair severed, sends dropped

	// Receiver side.
	expect uint32
}

func (w *World) relStateFor(src, dst int) *relState {
	if w.rel == nil {
		w.rel = make(map[relKey]*relState)
	}
	k := relKey{src, dst}
	st := w.rel[k]
	if st == nil {
		st = &relState{}
		w.rel[k] = st
	}
	return st
}

// relNeeded reports whether a send from rank r to rank d must go through
// the reliability layer: a fault injector is armed with link policies and
// either direction of the node pair is covered (a lossy reverse link loses
// acks, which still requires sequencing and retransmission).
func (w *World) relNeeded(r, d *Rank) bool {
	if w.Faults == nil || !w.Faults.UsesLinks() || r.node.ID == d.node.ID {
		return false
	}
	return w.Faults.LinkFaulty(r.node.ID, d.node.ID) || w.Faults.LinkFaulty(d.node.ID, r.node.ID)
}

// relSend queues an eager envelope on the reliable path. The sending proc
// is charged NIC occupancy only when its frame transmits immediately
// (head of queue); queued frames transmit from scheduler context when
// their predecessor is acked.
func (w *World) relSend(p *sim.Proc, r, d *Rank, env *envelope) {
	st := w.relStateFor(r.id, d.id)
	if st.dead {
		w.Faults.Counts.GiveUpDrops++
		w.Faults.Logf(w.K.Now(), "mpi: rank%d->rank%d dead (gave up), dropping %d-byte send tag %d",
			r.id, d.id, env.size, env.tag)
		return
	}
	fr := &relFrame{seq: st.nextSeq, env: env}
	st.nextSeq++
	st.sendq = append(st.sendq, fr)
	if len(st.sendq) > 1 {
		return // transmits when the head is acked
	}
	arrival, err := w.Clu.Net.Send(p, r.node.ID, d.node.ID, env.size)
	if err != nil {
		p.Fatalf("mpi: rank %d reliable send to rank %d: %v", r.id, d.id, err)
	}
	w.relLaunch(r, d, st, fr, arrival)
}

// relLaunch applies the forward link's fault verdict to a frame already
// booked on the NIC (arriving at `arrival` if unharmed) and arms the
// retransmission timer.
func (w *World) relLaunch(r, d *Rank, st *relState, fr *relFrame, arrival sim.Time) {
	now := w.K.Now()
	v := w.Faults.LinkVerdict(r.node.ID, d.node.ID, fr.env.size)
	if v.Drop || v.Corrupt {
		// Lost or garbled in flight: no delivery, the timer will resend.
		// (A corrupted frame is discarded by the receiver's checksum; for
		// timing purposes that equals a drop of the delivery event.)
		w.Faults.Logf(now, "mpi: frame seq=%d rank%d->rank%d lost (drop=%v corrupt=%v)",
			fr.seq, r.id, d.id, v.Drop, v.Corrupt)
	} else {
		at := arrival + v.Delay
		w.K.After(at-now, func() { w.relDeliver(r, d, st, fr) })
	}
	rto := (arrival - now) + w.Par.NetLatency + w.Clu.Net.SerializationTime(relAckBytes) + 4*w.Par.MPISendOverhead
	mult := st.attempts
	if mult > relBackoffCap {
		mult = relBackoffCap
	}
	rto *= sim.Time(1) << uint(mult)
	if st.timer != nil {
		st.timer.Cancel()
	}
	st.timer = w.K.AfterTimer(rto, func() { w.relTimeout(r, d, st) })
}

// relDeliver runs at the receiver when a frame survives the link.
func (w *World) relDeliver(r, d *Rank, st *relState, fr *relFrame) {
	switch {
	case fr.seq == st.expect:
		st.expect++
		d.deliver(fr.env)
	case fr.seq < st.expect:
		// Retransmit of an already-delivered frame (its ack was lost or
		// slow): discard the duplicate but re-ack so the sender advances.
		w.Faults.Counts.DupFrames++
	default:
		// Unreachable under stop-and-wait: frame seq+1 is only ever
		// transmitted after seq's ack, which is only sent after delivery.
		return
	}
	w.relAck(r, d, st, fr.seq)
}

// relAck sends the 4-byte acknowledgement back across the reverse link.
func (w *World) relAck(r, d *Rank, st *relState, seq uint32) {
	now := w.K.Now()
	v := w.Faults.LinkVerdict(d.node.ID, r.node.ID, relAckBytes)
	if v.Drop || v.Corrupt {
		w.Faults.Counts.AckDrops++
		w.Faults.Logf(now, "mpi: ack seq=%d rank%d->rank%d lost", seq, d.id, r.id)
		return
	}
	lat := w.Par.NetLatency + w.Clu.Net.SerializationTime(relAckBytes) + v.Delay
	w.K.After(lat, func() { w.relAcked(r, d, st, seq) })
}

// relAcked runs at the sender when an ack arrives.
func (w *World) relAcked(r, d *Rank, st *relState, seq uint32) {
	if st.dead || len(st.sendq) == 0 || st.sendq[0].seq != seq {
		return // stale ack (duplicate, or for a frame already advanced past)
	}
	if st.timer != nil {
		st.timer.Cancel()
		st.timer = nil
	}
	st.sendq = st.sendq[1:]
	st.attempts = 0
	if len(st.sendq) == 0 {
		return
	}
	fr := st.sendq[0]
	arrival, err := w.Clu.Net.Reserve(r.node.ID, d.node.ID, fr.env.size)
	if err != nil {
		w.K.Abort(err)
		return
	}
	w.relLaunch(r, d, st, fr, arrival)
}

// relTimeout fires when the head frame's ack did not arrive in time:
// retransmit with doubled timeout, or sever the pair after
// relMaxAttempts transmissions.
func (w *World) relTimeout(r, d *Rank, st *relState) {
	if st.dead || len(st.sendq) == 0 {
		return
	}
	st.timer = nil
	st.attempts++
	fr := st.sendq[0]
	if st.attempts >= relMaxAttempts {
		st.dead = true
		w.Faults.Counts.GiveUps++
		w.Faults.Counts.GiveUpDrops += int64(len(st.sendq))
		w.Faults.Logf(w.K.Now(), "mpi: rank%d->rank%d giving up on seq=%d after %d attempts; severing pair (%d queued frames dropped)",
			r.id, d.id, fr.seq, st.attempts, len(st.sendq))
		st.sendq = nil
		return
	}
	w.Faults.Counts.Retransmits++
	w.Faults.Logf(w.K.Now(), "mpi: retransmit seq=%d rank%d->rank%d (attempt %d)", fr.seq, r.id, d.id, st.attempts+1)
	arrival, err := w.Clu.Net.Reserve(r.node.ID, d.node.ID, fr.env.size)
	if err != nil {
		w.K.Abort(err)
		return
	}
	w.relLaunch(r, d, st, fr, arrival)
}

// RelDead reports whether the directed rank pair was severed by the
// reliability layer's give-up path (tests and diagnostics).
func (w *World) RelDead(src, dst int) bool {
	if w.rel == nil {
		return false
	}
	st := w.rel[relKey{src, dst}]
	return st != nil && st.dead
}
