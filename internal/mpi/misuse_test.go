package mpi

import (
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func TestSendToInvalidRankAborts(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("bad", func(p *sim.Proc) {
		w.Rank(0).Send(p, 99, 0, nil)
	})
	err := c.K.Run()
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("err = %v", err)
	}
}

func TestIsendToInvalidRankAborts(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("bad", func(p *sim.Proc) {
		w.Rank(0).Isend(p, -1, 0, nil)
	})
	err := c.K.Run()
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitOnForeignRequestAborts(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		q := w.Rank(0).Irecv(p, 2, 1)
		_ = q
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		p.Advance(sim.Microsecond)
		// Build a request on rank 1, then wait on it via rank 2's method
		// receiver — a cross-rank misuse.
		q := w.Rank(1).Irecv(p, 0, 9)
		w.Rank(2).Wait(p, q)
	})
	err := c.K.Run()
	if err == nil || !strings.Contains(err.Error(), "another rank's request") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorldRankPanicsOutOfRange(t *testing.T) {
	_, w := newWorld(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Rank(99) did not panic")
		}
	}()
	w.Rank(99)
}

func TestRequestDoneAccessor(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		q := w.Rank(0).Isend(p, 1, 0, []byte("x"))
		if !q.Done() { // eager: locally complete at once
			p.Fatalf("eager Isend not done")
		}
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 0)
	})
	run(t, c)
}
