package mpi

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"cellpilot/internal/cluster"
	"cellpilot/internal/sim"
)

func TestSendVecRecvIntoVecScatter(t *testing.T) {
	c, w := newWorld(t)
	hdr := []byte{0xAA, 0xBB}
	payload := []byte("scatter across segments")
	hdrDst := make([]byte, 2)
	seg1 := make([]byte, 10)
	seg2 := make([]byte, len(payload)-10)
	c.K.Spawn("tx", func(p *sim.Proc) {
		w.Rank(0).SendVec(p, 2, 9, hdr, payload)
	})
	c.K.Spawn("rx", func(p *sim.Proc) {
		st := w.Rank(2).RecvIntoVec(p, 0, 9, hdrDst, seg1, seg2)
		if st.Count != len(hdr)+len(payload) {
			p.Fatalf("count %d", st.Count)
		}
	})
	run(t, c)
	if !bytes.Equal(hdrDst, hdr) {
		t.Fatalf("hdr = %x", hdrDst)
	}
	if got := string(seg1) + string(seg2); got != string(payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestRecvIntoVecSizeMismatchAborts(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("tx", func(p *sim.Proc) {
		w.Rank(0).Send(p, 2, 9, make([]byte, 10))
	})
	c.K.Spawn("rx", func(p *sim.Proc) {
		w.Rank(2).RecvIntoVec(p, 0, 9, make([]byte, 4), make([]byte, 4)) // 8 != 10
	})
	err := c.K.Run()
	if err == nil || !strings.Contains(err.Error(), "expects exactly") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecvIntoVecRendezvous(t *testing.T) {
	c, w := newWorld(t)
	big := make([]byte, 32*1024)
	for i := range big {
		big[i] = byte(i % 7)
	}
	hdrDst := make([]byte, 16)
	dst := make([]byte, len(big)-16)
	c.K.Spawn("tx", func(p *sim.Proc) {
		w.Rank(0).SendVec(p, 2, 9, big[:16], big[16:])
	})
	c.K.Spawn("rx", func(p *sim.Proc) {
		p.Advance(10 * sim.Millisecond)
		w.Rank(2).RecvIntoVec(p, 0, 9, hdrDst, dst)
	})
	run(t, c)
	if !bytes.Equal(hdrDst, big[:16]) || !bytes.Equal(dst, big[16:]) {
		t.Fatal("rendezvous vectored payload corrupted")
	}
}

func TestProbeMultiReturnsFirstMatch(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("late", func(p *sim.Proc) {
		p.Advance(2 * sim.Millisecond)
		w.Rank(0).Send(p, 4, 7, []byte("x"))
	})
	c.K.Spawn("later", func(p *sim.Proc) {
		p.Advance(4 * sim.Millisecond)
		w.Rank(2).Send(p, 4, 8, []byte("y"))
	})
	c.K.Spawn("rx", func(p *sim.Proc) {
		specs := []ProbeSpec{{Src: 2, Tag: 8}, {Src: 0, Tag: 7}}
		idx, st := w.Rank(4).ProbeMulti(p, specs)
		if idx != 1 || st.Source != 0 || st.Tag != 7 {
			p.Fatalf("first match = %d %+v, want the tag-7 message", idx, st)
		}
		// Consume both; probing must not have consumed anything.
		w.Rank(4).Recv(p, 0, 7)
		w.Rank(4).Recv(p, 2, 8)
	})
	run(t, c)
}

func TestOnArrivalHookFires(t *testing.T) {
	c, w := newWorld(t)
	arrivals := 0
	w.Rank(2).OnArrival(func() { arrivals++ })
	c.K.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			w.Rank(0).Send(p, 2, i, nil)
		}
	})
	c.K.Spawn("rx", func(p *sim.Proc) {
		p.Advance(sim.Millisecond)
		for i := 0; i < 3; i++ {
			w.Rank(2).Recv(p, 0, i)
		}
	})
	run(t, c)
	if arrivals != 3 {
		t.Fatalf("arrival hook fired %d times", arrivals)
	}
}

// Property: any mix of message sizes (either side of the eager threshold)
// between one sender and one receiver arrives intact and in order.
func TestMixedSizeOrderingProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		clu, err := cluster.New(cluster.Spec{CellNodes: 2})
		if err != nil {
			return false
		}
		w, err := NewWorld(clu, []Placement{{Node: 0, Label: "tx"}, {Node: 1, Label: "rx"}})
		if err != nil {
			return false
		}
		payloads := make([][]byte, len(sizes))
		for i, s := range sizes {
			n := int(s)%9000 + 1 // spans the 4096 eager threshold
			payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, n)
		}
		ok := true
		clu.K.Spawn("tx", func(p *sim.Proc) {
			for _, pl := range payloads {
				w.Rank(0).Send(p, 1, 5, pl)
			}
		})
		clu.K.Spawn("rx", func(p *sim.Proc) {
			for i := range payloads {
				data, _ := w.Rank(1).Recv(p, 0, 5)
				if !bytes.Equal(data, payloads[i]) {
					ok = false
				}
			}
		})
		if err := clu.K.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
