package mpi

import (
	"fmt"

	"cellpilot/internal/sim"
)

// Request is a nonblocking operation handle (MPI_Request). Complete it
// with Wait, Waitall or Test on the owning rank.
type Request struct {
	rank   *Rank
	isSend bool
	done   bool
	out    []byte
	status Status
}

// Done reports whether the operation has completed (without progressing
// anything; use Test for MPI_Test semantics).
func (q *Request) Done() bool { return q.done }

// Isend starts a nonblocking send (MPI_Isend). The payload is snapshotted
// at call time, so the caller may reuse the buffer immediately; the
// request completes when an eager message is buffered or a rendezvous
// data phase finishes.
func (r *Rank) Isend(p *sim.Proc, dst, tag int, data []byte) *Request {
	r.bind(p)
	if dst < 0 || dst >= len(r.w.ranks) {
		p.Fatalf("mpi: isend to invalid rank %d", dst)
	}
	w := r.w
	d := w.ranks[dst]
	p.Advance(w.Par.MPISendOverhead)
	size := len(data)
	req := &Request{rank: r, isSend: true}
	env := &envelope{
		src: r.id, tag: tag, size: size,
		srcNode: r.node.ID, dstNode: d.node.ID,
		xfer: r.takeXfer(),
	}
	if size <= w.Par.EagerThreshold {
		env.eager = true
		env.data = append([]byte(nil), data...)
		var arrival sim.Time
		if r.node.ID == d.node.ID {
			p.Advance(w.localCopyTime(size))
			arrival = w.K.Now() + w.Par.LocalMPILatency
		} else {
			if w.relNeeded(r, d) {
				w.relSend(p, r, d, env)
				req.done = true // buffered with the reliability layer
				return req
			}
			var nerr error
			arrival, nerr = w.Clu.Net.Send(p, r.node.ID, d.node.ID, size)
			if nerr != nil {
				p.Fatalf("mpi: rank %d isend to rank %d: %v", r.id, dst, nerr)
			}
		}
		w.K.After(arrival-w.K.Now(), func() { d.deliver(env) })
		req.done = true // buffered: the send is locally complete
		return req
	}
	// Rendezvous without blocking: snapshot the payload and complete the
	// request when the data phase lets the sender proceed.
	owner := p
	env.srcBuf = append([]byte(nil), data...)
	env.senderDone = func() {
		req.done = true
		w.K.ReadyIfParked(owner)
	}
	rts := w.ctrlLatency(r.node.ID, d.node.ID)
	w.K.After(rts, func() { d.deliver(env) })
	return req
}

// Irecv posts a nonblocking receive (MPI_Irecv). The message lands in a
// fresh buffer retrievable from Wait.
func (r *Rank) Irecv(p *sim.Proc, src, tag int) *Request {
	return r.irecv(p, src, tag, nil)
}

// IrecvInto is Irecv receiving into buf (which may alias simulated
// memory).
func (r *Rank) IrecvInto(p *sim.Proc, src, tag int, buf []byte) *Request {
	return r.irecv(p, src, tag, buf)
}

func (r *Rank) irecv(p *sim.Proc, src, tag int, buf []byte) *Request {
	r.bind(p)
	p.Advance(r.w.Par.MPIRecvOverhead)
	req := &Request{rank: r}
	rr := &recvReq{src: src, tag: tag, proc: p, buf: buf, onDone: func(out []byte, st Status) {
		req.done = true
		req.out = out
		req.status = st
	}}
	if env, ok := r.takeUnexpected(src, tag); ok {
		r.complete(env, rr)
	} else {
		r.posted = append(r.posted, rr)
	}
	return req
}

// Wait blocks until the request completes (MPI_Wait) and returns the
// received payload (nil for sends) and status.
func (r *Rank) Wait(p *sim.Proc, q *Request) ([]byte, Status) {
	r.bind(p)
	if q.rank != r {
		p.Fatalf("mpi: waiting on another rank's request")
	}
	for !q.done {
		p.Park(fmt.Sprintf("mpi wait rank%d", r.id))
	}
	return q.out, q.status
}

// Waitall completes every request (MPI_Waitall).
func (r *Rank) Waitall(p *sim.Proc, qs []*Request) {
	for _, q := range qs {
		r.Wait(p, q)
	}
}

// Test reports whether the request has completed, without blocking
// (MPI_Test); it charges the usual per-call software cost.
func (r *Rank) Test(p *sim.Proc, q *Request) bool {
	r.bind(p)
	p.Advance(r.w.Par.MPIRecvOverhead)
	return q.done
}

// Sendrecv performs a combined send and receive that cannot deadlock
// against a matching Sendrecv on the peer (MPI_Sendrecv).
func (r *Rank) Sendrecv(p *sim.Proc, dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status) {
	rq := r.Irecv(p, src, recvTag)
	sq := r.Isend(p, dst, sendTag, data)
	out, st := r.Wait(p, rq)
	r.Wait(p, sq)
	return out, st
}
