package mpi

import "cellpilot/internal/sim"

// Collective operations are SPMD (every participating rank calls the same
// function), implemented over point-to-point messages in a reserved tag
// space, like a real MPI's tuned trees.
const (
	collTagBarrier  = 1 << 20
	collTagBcast    = 1<<20 + 1024
	collTagGather   = 1<<20 + 2048
	collTagReduce   = 1<<20 + 3072
	collTagScatter  = 1<<20 + 4096
	collTagAlltoall = 1<<20 + 5120
)

// Barrier blocks until every rank in the world has entered it
// (dissemination algorithm: log2(n) rounds).
func (r *Rank) Barrier(p *sim.Proc) {
	n := r.w.Size()
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (r.id + dist) % n
		from := (r.id - dist + n) % n
		r.Send(p, to, collTagBarrier+round, nil)
		r.Recv(p, from, collTagBarrier+round)
	}
}

// Bcast distributes root's data to every rank (binomial tree). The root
// passes the payload; other ranks pass nil and receive the payload as the
// return value.
func (r *Rank) Bcast(p *sim.Proc, root int, data []byte) []byte {
	n := r.w.Size()
	vrank := (r.id - root + n) % n // rotate so the root is virtual rank 0
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			data, _ = r.Recv(p, parent, collTagBcast)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			r.Send(p, child, collTagBcast, data)
		}
	}
	return data
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// Gather collects each rank's contribution at root. The root's return
// value is indexed by rank; other ranks get nil.
func (r *Rank) Gather(p *sim.Proc, root int, contrib []byte) [][]byte {
	if r.id != root {
		r.Send(p, root, collTagGather, contrib)
		return nil
	}
	out := make([][]byte, r.w.Size())
	out[root] = append([]byte(nil), contrib...)
	for i := 0; i < r.w.Size(); i++ {
		if i == root {
			continue
		}
		data, _ := r.Recv(p, i, collTagGather)
		out[i] = data
	}
	return out
}

// ReduceOp combines an incoming contribution into an accumulator (both the
// same length).
type ReduceOp func(acc, in []byte)

// Reduce combines every rank's contribution at root with op; the root gets
// the result, others nil.
func (r *Rank) Reduce(p *sim.Proc, root int, contrib []byte, op ReduceOp) []byte {
	// Binomial-tree reduction on virtual ranks rooted at root.
	n := r.w.Size()
	vrank := (r.id - root + n) % n
	acc := append([]byte(nil), contrib...)
	for mask := 1; mask < nextPow2(n); mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			r.Send(p, parent, collTagReduce, acc)
			return nil
		}
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			in, _ := r.Recv(p, child, collTagReduce)
			op(acc, in)
		}
	}
	if r.id == root {
		return acc
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast; every rank gets the
// combined result.
func (r *Rank) Allreduce(p *sim.Proc, contrib []byte, op ReduceOp) []byte {
	acc := r.Reduce(p, 0, contrib, op)
	return r.Bcast(p, 0, acc)
}

// Scatter distributes chunks[i] from root to rank i (MPI_Scatter with
// per-rank chunks). Non-root ranks pass nil and receive their chunk.
func (r *Rank) Scatter(p *sim.Proc, root int, chunks [][]byte) []byte {
	if r.id == root {
		if len(chunks) != r.w.Size() {
			p.Fatalf("mpi: scatter needs %d chunks, got %d", r.w.Size(), len(chunks))
		}
		for i, ch := range chunks {
			if i == root {
				continue
			}
			r.Send(p, i, collTagScatter, ch)
		}
		return append([]byte(nil), chunks[root]...)
	}
	out, _ := r.Recv(p, root, collTagScatter)
	return out
}

// Allgather collects every rank's contribution at every rank
// (MPI_Allgather): Gather to rank 0, then a broadcast of the flattened
// set with per-rank lengths.
func (r *Rank) Allgather(p *sim.Proc, contrib []byte) [][]byte {
	parts := r.Gather(p, 0, contrib)
	// Flatten with a simple length-prefixed encoding for the broadcast.
	var flat []byte
	if r.id == 0 {
		for _, part := range parts {
			flat = append(flat,
				byte(len(part)>>24), byte(len(part)>>16), byte(len(part)>>8), byte(len(part)))
			flat = append(flat, part...)
		}
	}
	flat = r.Bcast(p, 0, flat)
	out := make([][]byte, 0, r.w.Size())
	for off := 0; off < len(flat); {
		n := int(flat[off])<<24 | int(flat[off+1])<<16 | int(flat[off+2])<<8 | int(flat[off+3])
		off += 4
		out = append(out, append([]byte(nil), flat[off:off+n]...))
		off += n
	}
	return out
}

// Alltoall delivers send[i] from this rank to rank i and returns what
// every rank sent to this one, indexed by source (MPI_Alltoall). It uses
// nonblocking operations so all exchanges overlap.
func (r *Rank) Alltoall(p *sim.Proc, send [][]byte) [][]byte {
	n := r.w.Size()
	if len(send) != n {
		p.Fatalf("mpi: alltoall needs %d buffers, got %d", n, len(send))
	}
	out := make([][]byte, n)
	recvReqs := make([]*Request, 0, n-1)
	srcOf := map[*Request]int{}
	for i := 0; i < n; i++ {
		if i == r.id {
			out[i] = append([]byte(nil), send[i]...)
			continue
		}
		q := r.Irecv(p, i, collTagAlltoall)
		srcOf[q] = i
		recvReqs = append(recvReqs, q)
	}
	sendReqs := make([]*Request, 0, n-1)
	for i := 0; i < n; i++ {
		if i == r.id {
			continue
		}
		sendReqs = append(sendReqs, r.Isend(p, i, collTagAlltoall, send[i]))
	}
	for _, q := range recvReqs {
		data, _ := r.Wait(p, q)
		out[srcOf[q]] = data
	}
	r.Waitall(p, sendReqs)
	return out
}
