package mpi

import (
	"errors"
	"fmt"

	"cellpilot/internal/sim"
)

// ErrDeadline is returned by the Ctl-bounded operations when the deadline
// passes before the operation completes.
var ErrDeadline = errors.New("mpi: operation deadline exceeded")

// Ctl bounds a blocking operation. The zero Ctl imposes nothing — a
// Ctl-variant call with a zero Ctl parks at exactly the same instants as
// its plain counterpart, which is what keeps hardened runs bit-identical
// to clean ones when no fault machinery is armed.
type Ctl struct {
	// Deadline is an absolute virtual time after which the operation
	// returns ErrDeadline (0 = none).
	Deadline sim.Time
	// Stop is re-evaluated on every wake; a non-nil error abandons the
	// operation and is returned verbatim. The Pilot layer uses it to pull
	// blocked processes off channels that a fault just poisoned.
	Stop func() error
}

func (c Ctl) check(now sim.Time) error {
	if c.Stop != nil {
		if err := c.Stop(); err != nil {
			return err
		}
	}
	if c.Deadline > 0 && now >= c.Deadline {
		return ErrDeadline
	}
	return nil
}

// armed reports whether the ctl can ever abandon an operation.
func (c Ctl) armed() bool { return c.Deadline > 0 || c.Stop != nil }

// RecvCtl is Recv bounded by ctl. On abandonment the posted receive is
// withdrawn; a message that arrives later queues as unexpected for a
// future receive.
func (r *Rank) RecvCtl(p *sim.Proc, src, tag int, ctl Ctl) ([]byte, Status, error) {
	r.bind(p)
	w := r.w
	p.Advance(w.Par.MPIRecvOverhead)
	req := &recvReq{src: src, tag: tag, proc: p}
	if env, ok := r.takeUnexpected(src, tag); ok {
		r.complete(env, req)
	} else {
		r.posted = append(r.posted, req)
	}
	var tm *sim.Timer
	if ctl.Deadline > 0 && !req.done {
		tm = w.K.AfterTimer(ctl.Deadline-w.K.Now(), func() { w.K.ReadyIfParked(p) })
	}
	for !req.done {
		if err := ctl.check(w.K.Now()); err != nil {
			req.abandoned = true
			for i, q := range r.posted {
				if q == req {
					r.posted = append(r.posted[:i], r.posted[i+1:]...)
					break
				}
			}
			tm.Cancel()
			return nil, Status{}, err
		}
		p.Park(fmt.Sprintf("mpi recv rank%d src=%d tag=%d", r.id, src, tag))
	}
	tm.Cancel()
	return req.out, req.status, nil
}

// SendCtl is Send bounded by ctl. Only the rendezvous wait (a payload
// above the eager threshold waiting for the matching receive) can be
// abandoned: eager sends are buffered and complete locally, exactly as in
// Send. An abandoned rendezvous withdraws its RTS announcement; the
// message is never delivered.
func (r *Rank) SendCtl(p *sim.Proc, dst, tag int, data []byte, ctl Ctl) error {
	r.bind(p)
	if dst < 0 || dst >= len(r.w.ranks) {
		p.Fatalf("mpi: send to invalid rank %d", dst)
	}
	w := r.w
	d := w.ranks[dst]
	p.Advance(w.Par.MPISendOverhead)
	size := len(data)
	env := &envelope{
		src: r.id, tag: tag, size: size,
		srcNode: r.node.ID, dstNode: d.node.ID,
		xfer: r.takeXfer(),
	}
	if size <= w.Par.EagerThreshold {
		env.eager = true
		env.data = append([]byte(nil), data...)
		var arrival sim.Time
		if r.node.ID == d.node.ID {
			p.Advance(w.localCopyTime(size))
			arrival = w.K.Now() + w.Par.LocalMPILatency
		} else {
			if w.relNeeded(r, d) {
				w.relSend(p, r, d, env)
				return nil
			}
			var nerr error
			arrival, nerr = w.Clu.Net.Send(p, r.node.ID, d.node.ID, size)
			if nerr != nil {
				p.Fatalf("mpi: rank %d send to rank %d: %v", r.id, dst, nerr)
			}
		}
		w.K.After(arrival-w.K.Now(), func() { d.deliver(env) })
		return nil
	}
	// Rendezvous: announce with an RTS, then park until the data phase
	// completes or the ctl abandons the wait.
	done := false
	env.senderDone = func() {
		done = true
		w.K.ReadyIfParked(p)
	}
	env.srcBuf = data
	rts := w.ctrlLatency(r.node.ID, d.node.ID)
	w.K.After(rts, func() { d.deliver(env) })
	var tm *sim.Timer
	if ctl.Deadline > 0 {
		tm = w.K.AfterTimer(ctl.Deadline-w.K.Now(), func() { w.K.ReadyIfParked(p) })
	}
	for !done {
		if err := ctl.check(w.K.Now()); err != nil {
			env.cancelled = true
			d.unexpected.remove(env)
			tm.Cancel()
			return err
		}
		p.Park(fmt.Sprintf("mpi rendezvous send rank%d->rank%d tag %d (%d bytes)", r.id, dst, tag, size))
	}
	tm.Cancel()
	return nil
}

// SendVecCtl is SendVec bounded by ctl.
func (r *Rank) SendVecCtl(p *sim.Proc, dst, tag int, ctl Ctl, segs ...[]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	buf := make([]byte, 0, total)
	for _, s := range segs {
		buf = append(buf, s...)
	}
	return r.SendCtl(p, dst, tag, buf, ctl)
}
