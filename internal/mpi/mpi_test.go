package mpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"cellpilot/internal/cluster"
	"cellpilot/internal/sim"
)

// newWorld builds a 2-cell + 1-xeon cluster with ranks: 0,1 on cell0,
// 2,3 on cell1, 4 on xeon0.
func newWorld(t *testing.T) (*cluster.Cluster, *World) {
	t.Helper()
	c, err := cluster.New(cluster.Spec{CellNodes: 2, XeonNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(c, []Placement{
		{Node: 0, Label: "r0"}, {Node: 0, Label: "r1"},
		{Node: 1, Label: "r2"}, {Node: 1, Label: "r3"},
		{Node: 2, Label: "r4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, w
}

func run(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	if err := c.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvRemoteEager(t *testing.T) {
	c, w := newWorld(t)
	payload := []byte("hello from rank 0")
	var at sim.Time
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 2, 7, payload)
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		data, st := w.Rank(2).Recv(p, 0, 7)
		if !bytes.Equal(data, payload) {
			p.Fatalf("data %q", data)
		}
		if st.Source != 0 || st.Tag != 7 || st.Count != len(payload) {
			p.Fatalf("status %+v", st)
		}
		at = p.Now()
	})
	run(t, c)
	// One-way remote time must be in the calibrated band (~90-110us for
	// tiny messages, cf. paper Table II type 1 hand-coded = 98us).
	if at < 80*sim.Microsecond || at > 130*sim.Microsecond {
		t.Fatalf("remote eager recv completed at %s", at)
	}
}

func TestSendRecvLocalFasterThanRemote(t *testing.T) {
	c, w := newWorld(t)
	var localDone, remoteDone sim.Time
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, make([]byte, 100))
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 1)
		localDone = p.Now()
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		w.Rank(2).Send(p, 3, 1, make([]byte, 100)) // also local (node 1)
		w.Rank(2).Send(p, 4, 2, make([]byte, 100)) // remote to xeon — wait, rank2 sends
	})
	c.K.Spawn("r3", func(p *sim.Proc) {
		w.Rank(3).Recv(p, 2, 1)
	})
	c.K.Spawn("r4", func(p *sim.Proc) {
		w.Rank(4).Recv(p, 2, 2)
		remoteDone = p.Now()
	})
	run(t, c)
	if localDone >= remoteDone {
		t.Fatalf("local (%s) should beat remote (%s)", localDone, remoteDone)
	}
}

func TestRecvWildcards(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 4, 5, []byte("a"))
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		p.Advance(sim.Millisecond)
		w.Rank(2).Send(p, 4, 6, []byte("b"))
	})
	c.K.Spawn("r4", func(p *sim.Proc) {
		d1, st1 := w.Rank(4).Recv(p, AnySource, AnyTag)
		d2, st2 := w.Rank(4).Recv(p, AnySource, AnyTag)
		if string(d1) != "a" || st1.Source != 0 || st1.Tag != 5 {
			p.Fatalf("first: %q %+v", d1, st1)
		}
		if string(d2) != "b" || st2.Source != 2 || st2.Tag != 6 {
			p.Fatalf("second: %q %+v", d2, st2)
		}
	})
	run(t, c)
}

func TestNonOvertakingSameSender(t *testing.T) {
	c, w := newWorld(t)
	const n = 20
	c.K.Spawn("r0", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 8)
			binary.BigEndian.PutUint64(buf, uint64(i))
			w.Rank(0).Send(p, 2, 9, buf)
		}
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			data, _ := w.Rank(2).Recv(p, 0, 9)
			if got := binary.BigEndian.Uint64(data); got != uint64(i) {
				p.Fatalf("message %d arrived as %d", i, got)
			}
		}
	})
	run(t, c)
}

func TestRendezvousBlocksSenderUntilRecv(t *testing.T) {
	c, w := newWorld(t)
	big := make([]byte, 64*1024) // above the 4K eager threshold
	for i := range big {
		big[i] = byte(i % 251)
	}
	var sendDone sim.Time
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 2, 3, big)
		sendDone = p.Now()
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		p.Advance(50 * sim.Millisecond) // receiver arrives very late
		data, _ := w.Rank(2).Recv(p, 0, 3)
		if !bytes.Equal(data, big) {
			p.Fatalf("rendezvous corrupted payload")
		}
	})
	run(t, c)
	if sendDone < 50*sim.Millisecond {
		t.Fatalf("rendezvous send returned at %s, before the recv was posted", sendDone)
	}
}

func TestEagerDoesNotBlockSender(t *testing.T) {
	c, w := newWorld(t)
	var sendDone sim.Time
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 2, 3, make([]byte, 64))
		sendDone = p.Now()
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		p.Advance(50 * sim.Millisecond)
		w.Rank(2).Recv(p, 0, 3)
	})
	run(t, c)
	if sendDone > sim.Millisecond {
		t.Fatalf("eager send blocked until %s", sendDone)
	}
}

func TestRecvIntoAliasesBuffer(t *testing.T) {
	c, w := newWorld(t)
	dst := make([]byte, 32)
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, []byte("zero-copy target"))
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		n, st := w.Rank(1).RecvInto(p, 0, 1, dst)
		if n != 16 || st.Count != 16 {
			p.Fatalf("n=%d st=%+v", n, st)
		}
	})
	run(t, c)
	if string(dst[:16]) != "zero-copy target" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestRecvIntoTooSmallAborts(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, make([]byte, 100))
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).RecvInto(p, 0, 1, make([]byte, 10))
	})
	err := c.K.Run()
	if err == nil || !strings.Contains(err.Error(), "buffer too small") {
		t.Fatalf("err = %v", err)
	}
}

func TestProbeAndIprobe(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		p.Advance(sim.Millisecond)
		w.Rank(0).Send(p, 1, 42, make([]byte, 77))
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		if _, ok := w.Rank(1).Iprobe(p, AnySource, AnyTag); ok {
			p.Fatalf("Iprobe true before any send")
		}
		st := w.Rank(1).Probe(p, 0, 42) // blocks until the message lands
		if st.Count != 77 {
			p.Fatalf("probe count %d", st.Count)
		}
		// Probe must not consume: Iprobe then Recv still see it.
		if _, ok := w.Rank(1).Iprobe(p, 0, 42); !ok {
			p.Fatalf("Iprobe false after probe")
		}
		data, _ := w.Rank(1).Recv(p, 0, 42)
		if len(data) != 77 {
			p.Fatalf("recv len %d", len(data))
		}
	})
	run(t, c)
}

func TestUnmatchedRecvDeadlocks(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Recv(p, 2, 1) // nobody sends
	})
	err := c.K.Run()
	var dl *sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "mpi recv rank0") {
		t.Fatalf("deadlock report lacks recv context: %v", err)
	}
}

func TestThreadSingleEnforced(t *testing.T) {
	c, w := newWorld(t)
	c.K.Spawn("owner", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, nil)
	})
	c.K.Spawn("thief", func(p *sim.Proc) {
		p.Advance(sim.Millisecond)
		w.Rank(0).Send(p, 1, 1, nil)
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 1)
		w.Rank(1).Recv(p, 0, 1)
	})
	err := c.K.Run()
	if err == nil || !strings.Contains(err.Error(), "MPI_THREAD_SINGLE") {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrier(t *testing.T) {
	c, w := newWorld(t)
	var after []sim.Time
	var slowest sim.Time
	for i := 0; i < w.Size(); i++ {
		i := i
		c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			delay := sim.Time(i) * 10 * sim.Millisecond
			p.Advance(delay)
			if delay > slowest {
				slowest = delay
			}
			w.Rank(i).Barrier(p)
			after = append(after, p.Now())
		})
	}
	run(t, c)
	if len(after) != w.Size() {
		t.Fatalf("only %d ranks passed the barrier", len(after))
	}
	for _, ts := range after {
		if ts < slowest {
			t.Fatalf("a rank passed the barrier at %s, before the slowest entered (%s)", ts, slowest)
		}
	}
}

func TestBcastAllRoots(t *testing.T) {
	for root := 0; root < 5; root++ {
		c, w := newWorld(t)
		payload := []byte(fmt.Sprintf("payload-from-%d", root))
		got := make([][]byte, w.Size())
		for i := 0; i < w.Size(); i++ {
			i := i
			c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				var in []byte
				if i == root {
					in = payload
				}
				got[i] = w.Rank(i).Bcast(p, root, in)
			})
		}
		run(t, c)
		for i, g := range got {
			if !bytes.Equal(g, payload) {
				t.Fatalf("root %d: rank %d got %q", root, i, g)
			}
		}
	}
}

func TestGather(t *testing.T) {
	c, w := newWorld(t)
	var got [][]byte
	for i := 0; i < w.Size(); i++ {
		i := i
		c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			res := w.Rank(i).Gather(p, 2, []byte{byte(i), byte(i * 2)})
			if i == 2 {
				got = res
			} else if res != nil {
				p.Fatalf("non-root got a result")
			}
		})
	}
	run(t, c)
	if len(got) != 5 {
		t.Fatalf("gathered %d", len(got))
	}
	for i, g := range got {
		if len(g) != 2 || g[0] != byte(i) || g[1] != byte(i*2) {
			t.Fatalf("contribution %d = %v", i, g)
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	c, w := newWorld(t)
	sum := func(acc, in []byte) {
		a := binary.BigEndian.Uint64(acc)
		b := binary.BigEndian.Uint64(in)
		binary.BigEndian.PutUint64(acc, a+b)
	}
	results := make([]uint64, w.Size())
	for i := 0; i < w.Size(); i++ {
		i := i
		c.K.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			contrib := make([]byte, 8)
			binary.BigEndian.PutUint64(contrib, uint64(i+1))
			out := w.Rank(i).Allreduce(p, contrib, sum)
			results[i] = binary.BigEndian.Uint64(out)
		})
	}
	run(t, c)
	for i, r := range results {
		if r != 15 { // 1+2+3+4+5
			t.Fatalf("rank %d allreduce = %d, want 15", i, r)
		}
	}
}

func TestWorldValidation(t *testing.T) {
	c, _ := cluster.New(cluster.Spec{CellNodes: 1})
	if _, err := NewWorld(c, []Placement{{Node: 5}}); err == nil {
		t.Fatal("bad placement accepted")
	}
}
