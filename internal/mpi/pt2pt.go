package mpi

import (
	"fmt"

	"cellpilot/internal/hostprof"
	"cellpilot/internal/sim"
)

// envelope is a message in flight or queued unexpected at the receiver.
type envelope struct {
	src, tag int
	size     int
	eager    bool
	data     []byte // eager payload (copied at send time)
	// senderDone runs (in scheduler context) when a rendezvous data phase
	// lets the sender proceed: waking a parked Send, or completing an
	// Isend request.
	senderDone func()
	srcBuf     []byte // rendezvous: sender's buffer, read at the data phase
	srcNode    int
	dstNode    int
	xfer       int64 // observability transfer id (TagNextXfer), 0 = untagged
	// cancelled marks a rendezvous announcement whose sender abandoned the
	// wait (SendCtl deadline/stop); deliver discards it.
	cancelled bool
	// taken marks an envelope consumed from the unexpected queue; the
	// arrival-ordered index skips it lazily.
	taken bool
}

// envKey addresses one per-(source, tag) FIFO in the unexpected queue.
type envKey struct{ src, tag int }

// unexpectedQueue holds unmatched arrivals. The hot path — every channel
// operation receives from a specific peer on a specific tag — hits a
// per-key FIFO in O(1) instead of the old linear scan with a slice shift.
// Wildcard queries walk an arrival-ordered side index (taken entries are
// skipped lazily and compacted), reproducing the original scan's matching
// order exactly; no map iteration happens anywhere, so matching stays
// deterministic.
type unexpectedQueue struct {
	byKey map[envKey][]*envelope
	order []*envelope // arrival order; consumed entries stay until compaction
	head  int         // first possibly-live index in order
	n     int
}

func (q *unexpectedQueue) add(env *envelope) {
	if q.byKey == nil {
		q.byKey = map[envKey][]*envelope{}
	}
	k := envKey{env.src, env.tag}
	q.byKey[k] = append(q.byKey[k], env)
	for q.head < len(q.order) && q.order[q.head].taken {
		q.head++
	}
	if q.head > 32 && q.head > len(q.order)/2 {
		q.order = append(q.order[:0], q.order[q.head:]...)
		q.head = 0
	}
	q.order = append(q.order, env)
	q.n++
}

// peek returns the earliest-arrived envelope matching (src, tag) without
// consuming it.
func (q *unexpectedQueue) peek(src, tag int) (*envelope, bool) {
	if q.n == 0 {
		return nil, false
	}
	if src != AnySource && tag != AnyTag {
		if l := q.byKey[envKey{src, tag}]; len(l) > 0 {
			return l[0], true
		}
		return nil, false
	}
	for i := q.head; i < len(q.order); i++ {
		if env := q.order[i]; !env.taken && match(src, tag, env.src, env.tag) {
			return env, true
		}
	}
	return nil, false
}

// peekMulti returns the earliest-arrived envelope matching any spec, with
// the index of the first spec it matches — the ProbeMulti contract.
func (q *unexpectedQueue) peekMulti(specs []ProbeSpec) (int, *envelope, bool) {
	for i := q.head; i < len(q.order); i++ {
		env := q.order[i]
		if env.taken {
			continue
		}
		for si, sp := range specs {
			if match(sp.Src, sp.Tag, env.src, env.tag) {
				return si, env, true
			}
		}
	}
	return 0, nil, false
}

// take consumes the earliest-arrived envelope matching (src, tag). The
// match is always the head of its key FIFO: per-key order is a subsequence
// of arrival order.
func (q *unexpectedQueue) take(src, tag int) (*envelope, bool) {
	env, ok := q.peek(src, tag)
	if !ok {
		return nil, false
	}
	q.unlink(env)
	return env, true
}

// remove drops a specific envelope if still queued (SendCtl withdrawing a
// cancelled rendezvous announcement).
func (q *unexpectedQueue) remove(env *envelope) {
	if env.taken {
		return
	}
	k := envKey{env.src, env.tag}
	for _, e := range q.byKey[k] {
		if e == env {
			q.unlink(env)
			return
		}
	}
}

func (q *unexpectedQueue) unlink(env *envelope) {
	k := envKey{env.src, env.tag}
	l := q.byKey[k]
	if len(l) > 0 && l[0] == env {
		l = l[1:] // O(1) head pop — the overwhelmingly common case
	} else {
		for i, e := range l {
			if e == env {
				l = append(l[:i], l[i+1:]...)
				break
			}
		}
	}
	if len(l) == 0 {
		delete(q.byKey, k)
	} else {
		q.byKey[k] = l
	}
	env.taken = true
	q.n--
}

// recvReq is a posted receive awaiting a matching envelope.
type recvReq struct {
	src, tag int
	proc     *sim.Proc
	buf      []byte   // destination; nil means allocate
	segs     [][]byte // vectored destination (RecvIntoVec); overrides buf
	segTotal int
	done     bool
	status   Status
	out      []byte
	// abandoned marks a receive whose ctl fired (RecvCtl deadline/stop); a
	// data phase already in flight completes into the void.
	abandoned bool
	// onDone, when set, also receives the completion (nonblocking Irecv).
	onDone func(out []byte, st Status)
}

func match(src, tag, esrc, etag int) bool {
	return (src == AnySource || src == esrc) && (tag == AnyTag || tag == etag)
}

// localCopyTime is the shared-memory per-byte cost of the intra-node path.
func (w *World) localCopyTime(n int) sim.Time {
	if w.Par.LocalMPIBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / w.Par.LocalMPIBytesPerSec * float64(sim.Second))
}

// ctrlLatency is the one-way time of a small control message (rendezvous
// RTS/CTS) between the two nodes.
func (w *World) ctrlLatency(a, b int) sim.Time {
	if a == b {
		return w.Par.LocalMPILatency
	}
	return w.Par.NetLatency
}

// Send transmits data to rank dst with the given tag. It blocks p for the
// software overhead and (remote) NIC serialization; above the eager
// threshold it additionally blocks until the receiver has posted the
// matching receive (rendezvous), which is how real MPI large-message sends
// behave and what makes unmatched large sends deadlock-visible.
func (r *Rank) Send(p *sim.Proc, dst, tag int, data []byte) {
	r.w.Host.Enter(hostprof.SubsysMPI)
	defer r.w.Host.Exit()
	r.bind(p)
	if dst < 0 || dst >= len(r.w.ranks) {
		p.Fatalf("mpi: send to invalid rank %d", dst)
	}
	w := r.w
	d := w.ranks[dst]
	p.Advance(w.Par.MPISendOverhead)
	size := len(data)
	env := &envelope{
		src: r.id, tag: tag, size: size,
		srcNode: r.node.ID, dstNode: d.node.ID,
		xfer: r.takeXfer(),
	}
	if size <= w.Par.EagerThreshold {
		env.eager = true
		env.data = append([]byte(nil), data...)
		var arrival sim.Time
		if r.node.ID == d.node.ID {
			p.Advance(w.localCopyTime(size)) // copy into the shm mailbox
			arrival = w.K.Now() + w.Par.LocalMPILatency
		} else {
			if w.relNeeded(r, d) {
				w.relSend(p, r, d, env)
				return
			}
			var nerr error
			arrival, nerr = w.Clu.Net.Send(p, r.node.ID, d.node.ID, size)
			if nerr != nil {
				p.Fatalf("mpi: rank %d send to rank %d: %v", r.id, dst, nerr)
			}
		}
		w.K.After(arrival-w.K.Now(), func() { d.deliver(env) })
		return
	}
	// Rendezvous: announce with an RTS, then park until the data phase
	// (started by the matching receive) completes.
	done := false
	env.senderDone = func() {
		done = true
		w.K.ReadyIfParked(p)
	}
	env.srcBuf = data
	rts := w.ctrlLatency(r.node.ID, d.node.ID)
	w.K.After(rts, func() { d.deliver(env) })
	for !done {
		p.Park(fmt.Sprintf("mpi rendezvous send rank%d->rank%d tag %d (%d bytes)", r.id, dst, tag, size))
	}
}

// deliver runs in scheduler context when an envelope reaches the receiver.
func (r *Rank) deliver(env *envelope) {
	r.w.Host.Enter(hostprof.SubsysMPI)
	defer r.w.Host.Exit()
	if env.cancelled {
		return
	}
	if w := r.w; w.Flow != nil {
		w.Flow(w.ranks[env.src].node.ID, r.node.ID, env.size)
	}
	if r.arrival != nil {
		r.arrival()
	}
	r.wakeProbes(env)
	for i, req := range r.posted {
		if match(req.src, req.tag, env.src, env.tag) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			r.complete(env, req)
			return
		}
	}
	r.unexpected.add(env)
}

// complete pairs an envelope with a receive request: immediate copy for an
// arrived eager message, or the rendezvous data phase. It may run in
// scheduler context (async delivery) or in the receiver's own context (a
// Recv that found the envelope unexpected), so it wakes the receiver only
// if the receiver is parked.
//
// Rendezvous data does not book NIC occupancy (the envelope already
// modelled queueing for the header; payload contention is second-order for
// the paper's single-stream benchmarks) — it charges serialization plus
// propagation analytically.
func (r *Rank) complete(env *envelope, req *recvReq) {
	w := r.w
	if req.segs != nil && env.size != req.segTotal {
		w.K.Abort(fmt.Errorf("mpi: rank %d vectored recv expects exactly %d bytes, message has %d (tag %d from rank %d)",
			r.id, req.segTotal, env.size, env.tag, env.src))
		return
	}
	if req.segs == nil && req.buf != nil && env.size > len(req.buf) {
		w.K.Abort(fmt.Errorf("mpi: rank %d recv buffer too small: %d < %d (tag %d from rank %d)",
			r.id, len(req.buf), env.size, env.tag, env.src))
		return
	}
	finish := func(payload []byte) {
		if req.abandoned {
			return
		}
		n := 0
		if req.segs != nil {
			for _, seg := range req.segs {
				n += copy(seg, payload[n:])
			}
		} else {
			req.out = req.buf
			if req.out == nil {
				req.out = make([]byte, env.size)
			}
			n = copy(req.out, payload)
		}
		req.status = Status{Source: env.src, Tag: env.tag, Count: n, Xfer: env.xfer}
		req.done = true
		if req.onDone != nil {
			req.onDone(req.out, req.status)
		}
		w.K.ReadyIfParked(req.proc)
	}
	if env.eager {
		finish(env.data)
		return
	}
	// Rendezvous data phase: CTS travels back, then the payload.
	cts := w.ctrlLatency(env.srcNode, env.dstNode)
	var ser, lat sim.Time
	if env.srcNode == env.dstNode {
		ser = w.localCopyTime(env.size)
		lat = w.Par.LocalMPILatency
	} else {
		ser = w.Clu.Net.SerializationTime(env.size)
		lat = w.Par.NetLatency
	}
	w.K.After(cts+ser, env.senderDone)
	w.K.After(cts+ser+lat, func() { finish(env.srcBuf) })
}

// Recv receives a message matching (src, tag) — wildcards allowed — into a
// fresh buffer, blocking until it arrives.
func (r *Rank) Recv(p *sim.Proc, src, tag int) ([]byte, Status) {
	return r.recv(p, src, tag, nil)
}

// RecvInto receives into buf (which may alias simulated memory, e.g. an
// SPE local-store window — the Co-Pilot's zero-copy trick). The message
// must fit in buf.
func (r *Rank) RecvInto(p *sim.Proc, src, tag int, buf []byte) (int, Status) {
	out, st := r.recv(p, src, tag, buf)
	_ = out
	return st.Count, st
}

func (r *Rank) recv(p *sim.Proc, src, tag int, buf []byte) ([]byte, Status) {
	r.w.Host.Enter(hostprof.SubsysMPI)
	defer r.w.Host.Exit()
	r.bind(p)
	w := r.w
	p.Advance(w.Par.MPIRecvOverhead)
	req := &recvReq{src: src, tag: tag, proc: p, buf: buf}
	if env, ok := r.takeUnexpected(src, tag); ok {
		r.complete(env, req)
	} else {
		r.posted = append(r.posted, req)
	}
	for !req.done {
		p.Park(fmt.Sprintf("mpi recv rank%d src=%d tag=%d", r.id, src, tag))
	}
	return req.out, req.status
}

func (r *Rank) takeUnexpected(src, tag int) (*envelope, bool) {
	return r.unexpected.take(src, tag)
}

// probeReq is a blocked Probe or ProbeMulti.
type probeReq struct {
	specs   []ProbeSpec
	proc    *sim.Proc
	status  Status
	matched int
	done    bool
}

func (r *Rank) wakeProbes(env *envelope) {
	for i, pr := range r.probes {
		for si, sp := range pr.specs {
			if match(sp.Src, sp.Tag, env.src, env.tag) {
				pr.status = Status{Source: env.src, Tag: env.tag, Count: env.size, Xfer: env.xfer}
				pr.matched = si
				pr.done = true
				r.probes = append(r.probes[:i], r.probes[i+1:]...)
				r.w.K.ReadyIfParked(pr.proc)
				return
			}
		}
	}
}

// Probe blocks until a message matching (src, tag) is available to Recv,
// and reports its status without consuming it.
func (r *Rank) Probe(p *sim.Proc, src, tag int) Status {
	_, st := r.ProbeMulti(p, []ProbeSpec{{Src: src, Tag: tag}})
	return st
}

// Iprobe reports whether a message matching (src, tag) is available,
// without blocking or consuming it.
func (r *Rank) Iprobe(p *sim.Proc, src, tag int) (Status, bool) {
	r.bind(p)
	p.Advance(r.w.Par.MPIRecvOverhead)
	if env, ok := r.unexpected.peek(src, tag); ok {
		return Status{Source: env.src, Tag: env.tag, Count: env.size, Xfer: env.xfer}, true
	}
	return Status{}, false
}
