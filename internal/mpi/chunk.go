package mpi

import "cellpilot/internal/sim"

// SendChunk injects one chunk of a pipelined large-message stream toward
// rank dst and returns the chunk's nominal arrival time at the receiver.
// Unlike Send it never waits for a rendezvous and never blocks for NIC
// serialization: the sender is charged only the per-chunk stack injection
// (MPISendOverhead + ChunkStackTime), the NIC is booked asynchronously at
// the raw wire rate (ReserveRaw), and the chunk delivers like an eager
// message whatever its size — the caller's pipeline-depth throttle is the
// flow control. Chunk streams are internode only.
//
// On a link under an active fault policy the chunk rides the stop-and-wait
// reliability layer instead: strict in-order delivery with duplicate
// discard means a mid-stream fault degrades to retransmission or a severed
// pair — never a reordered or torn stream.
func (r *Rank) SendChunk(p *sim.Proc, dst, tag int, data []byte) sim.Time {
	r.bind(p)
	if dst < 0 || dst >= len(r.w.ranks) {
		p.Fatalf("mpi: chunk send to invalid rank %d", dst)
	}
	w := r.w
	d := w.ranks[dst]
	if r.node.ID == d.node.ID {
		p.Fatalf("mpi: chunk send rank %d -> rank %d is intra-node (chunked path is internode only)", r.id, dst)
	}
	p.Advance(w.Par.MPISendOverhead + w.Par.ChunkStackTime(len(data)))
	env := &envelope{
		src: r.id, tag: tag, size: len(data),
		eager:   true,
		data:    append([]byte(nil), data...),
		srcNode: r.node.ID, dstNode: d.node.ID,
		xfer: r.takeXfer(),
	}
	if w.relNeeded(r, d) {
		w.relSend(p, r, d, env)
		// The reliability layer owns delivery timing now (retransmission,
		// severance); report the unloaded arrival for the caller's throttle.
		return w.K.Now() + w.Par.LinkStartup + w.Par.ChunkWireTime(len(data)) + w.Par.NetLatency
	}
	arrival, nerr := w.Clu.Net.ReserveRaw(r.node.ID, d.node.ID, len(data))
	if nerr != nil {
		p.Fatalf("mpi: rank %d chunk send to rank %d: %v", r.id, dst, nerr)
	}
	w.K.After(arrival-w.K.Now(), func() { d.deliver(env) })
	return arrival
}
