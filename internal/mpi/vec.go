package mpi

import (
	"fmt"

	"cellpilot/internal/sim"
)

// SendVec sends the concatenation of segments as one message. The Co-Pilot
// uses it to prepend a validation header to a payload that lives in an SPE
// local-store window without staging the payload through main memory
// (the copy below is a Go implementation detail; the *time* charged is the
// single-message cost, which is what the zero-copy design buys).
func (r *Rank) SendVec(p *sim.Proc, dst, tag int, segs ...[]byte) {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	buf := make([]byte, 0, total)
	for _, s := range segs {
		buf = append(buf, s...)
	}
	r.Send(p, dst, tag, buf)
}

// IsendVec is the nonblocking SendVec: the segments are snapshotted and
// the send proceeds without the caller. The Co-Pilot relays SPE writes
// this way — a blocking relay to a PPE that is itself mid-send toward the
// Co-Pilot would be a circular wait.
func (r *Rank) IsendVec(p *sim.Proc, dst, tag int, segs ...[]byte) *Request {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	buf := make([]byte, 0, total)
	for _, s := range segs {
		buf = append(buf, s...)
	}
	return r.Isend(p, dst, tag, buf)
}

// RecvIntoVec receives one message scattered across the given segments in
// order (header into scratch, payload straight into a local-store window).
// The message size must exactly fill the segments.
func (r *Rank) RecvIntoVec(p *sim.Proc, src, tag int, segs ...[]byte) Status {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	r.bind(p)
	p.Advance(r.w.Par.MPIRecvOverhead)
	req := &recvReq{src: src, tag: tag, proc: p, segs: segs, segTotal: total}
	if env, ok := r.takeUnexpected(src, tag); ok {
		r.complete(env, req)
	} else {
		r.posted = append(r.posted, req)
	}
	for !req.done {
		p.Park(fmt.Sprintf("mpi recvvec rank%d src=%d tag=%d", r.id, src, tag))
	}
	return req.status
}

// OnArrival registers fn to run (in scheduler context) whenever a message
// is delivered to this rank, whether or not a receive was posted. The
// Co-Pilot registers a nudge here so its event loop can block instead of
// spinning.
func (r *Rank) OnArrival(fn func()) { r.arrival = fn }

// ProbeSpec is one (source, tag) pattern for ProbeMulti.
type ProbeSpec struct {
	Src, Tag int
}

// ProbeMulti blocks until a message matching any of the specs is available
// and returns the index of the first matching spec with the message's
// status; the message is not consumed. It is the primitive behind Pilot's
// bundle select.
func (r *Rank) ProbeMulti(p *sim.Proc, specs []ProbeSpec) (int, Status) {
	r.bind(p)
	p.Advance(r.w.Par.MPIRecvOverhead)
	if i, env, ok := r.unexpected.peekMulti(specs); ok {
		return i, Status{Source: env.src, Tag: env.tag, Count: env.size, Xfer: env.xfer}
	}
	pr := &probeReq{specs: specs, proc: p}
	r.probes = append(r.probes, pr)
	for !pr.done {
		p.Park(fmt.Sprintf("mpi probemulti rank%d (%d patterns)", r.id, len(specs)))
	}
	return pr.matched, pr.status
}
