package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cellpilot/internal/fault"
	"cellpilot/internal/sim"
)

// lossyWorld builds the standard test world with a symmetric lossy link
// between nodes 0 and 1.
func lossyWorld(t *testing.T, seed int64, drop float64) (*World, func()) {
	t.Helper()
	c, w := newWorld(t)
	w.Faults = fault.NewInjector(fault.Plan{
		Seed: seed,
		Links: []fault.LinkPolicy{
			{From: 0, To: 1, DropProb: drop},
			{From: 1, To: 0, DropProb: drop},
		},
	})
	return w, func() { run(t, c) }
}

// TestReliableLossyDelivery: every sequenced eager send over a 10% lossy
// link is delivered exactly once, in order, with retransmits recorded.
func TestReliableLossyDelivery(t *testing.T) {
	w, runAll := lossyWorld(t, 42, 0.1)
	const reps = 40
	payload := func(i int) []byte { return []byte(fmt.Sprintf("msg-%03d-%s", i, strings.Repeat("x", 1600))) }
	w.K.Spawn("r0", func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			w.Rank(0).Send(p, 2, 7, payload(i))
		}
	})
	w.K.Spawn("r2", func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			data, st := w.Rank(2).Recv(p, 0, 7)
			if !bytes.Equal(data, payload(i)) {
				p.Fatalf("message %d out of order or corrupted: %.20q", i, data)
			}
			if st.Count != len(payload(i)) {
				p.Fatalf("message %d count %d", i, st.Count)
			}
		}
	})
	runAll()
	if w.Faults.Counts.LinkDrops == 0 {
		t.Fatal("no drops at 10% loss over 40+ frames; policy not applied")
	}
	if w.Faults.Counts.Retransmits == 0 {
		t.Fatal("drops happened but nothing was retransmitted")
	}
	if w.RelDead(0, 2) {
		t.Fatal("pair severed under mild loss; backoff budget too small")
	}
}

// TestReliableDeterminism: the same seed yields the identical fault log
// and counters; a different seed yields a different drop pattern.
func TestReliableDeterminism(t *testing.T) {
	outcome := func(seed int64) (fault.Counts, string) {
		w, runAll := lossyWorld(t, seed, 0.2)
		w.K.Spawn("r0", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				w.Rank(0).Send(p, 2, 1, make([]byte, 512))
			}
		})
		w.K.Spawn("r2", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				w.Rank(2).Recv(p, 0, 1)
			}
		})
		runAll()
		return w.Faults.Counts, strings.Join(w.Faults.Log(), "\n")
	}
	cA, lA := outcome(7)
	cB, lB := outcome(7)
	if cA != cB || lA != lB {
		t.Fatalf("same seed diverged:\ncounts %+v vs %+v\n--- log A ---\n%s\n--- log B ---\n%s", cA, cB, lA, lB)
	}
	cC, lC := outcome(8)
	if cA == cC && lA == lC {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

// TestReliableAckLoss: loss only on the REVERSE link (acks) still forces
// sequencing — duplicates from ack-loss retransmits must be absorbed, and
// the receiver sees each message exactly once.
func TestReliableAckLoss(t *testing.T) {
	c, w := newWorld(t)
	w.Faults = fault.NewInjector(fault.Plan{
		Seed:  5,
		Links: []fault.LinkPolicy{{From: 1, To: 0, DropProb: 0.3}},
	})
	const reps = 30
	got := 0
	c.K.Spawn("r0", func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			w.Rank(0).Send(p, 2, 9, []byte{byte(i)})
		}
	})
	c.K.Spawn("r2", func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			data, _ := w.Rank(2).Recv(p, 0, 9)
			if len(data) != 1 || data[0] != byte(i) {
				p.Fatalf("message %d: got %v", i, data)
			}
			got++
		}
	})
	run(t, c)
	if got != reps {
		t.Fatalf("delivered %d/%d", got, reps)
	}
	if w.Faults.Counts.AckDrops == 0 {
		t.Fatal("no ack drops at 30% reverse loss")
	}
	if w.Faults.Counts.DupFrames == 0 {
		t.Fatal("ack loss must cause duplicate frames at the receiver")
	}
}

// TestReliableSeverance: a fully dead link exhausts the attempt budget,
// severs the directed pair, and subsequent sends are dropped (counted)
// rather than queued forever. The sender itself never blocks.
func TestReliableSeverance(t *testing.T) {
	c, w := newWorld(t)
	w.Faults = fault.NewInjector(fault.Plan{
		Seed:  1,
		Links: []fault.LinkPolicy{{From: 0, To: 1, DropProb: 1.0}},
	})
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 2, 3, make([]byte, 64))
		// Give the retransmit budget time to exhaust, then send again.
		p.Advance(sim.Second)
		w.Rank(0).Send(p, 2, 3, make([]byte, 64))
	})
	run(t, c)
	if !w.RelDead(0, 2) {
		t.Fatal("pair not severed by a 100% lossy link")
	}
	if got := w.Faults.Counts.GiveUps; got != 1 {
		t.Fatalf("GiveUps = %d, want 1", got)
	}
	if got := w.Faults.Counts.GiveUpDrops; got == 0 {
		t.Fatal("post-severance send was not counted as dropped")
	}
	if got := int(w.Faults.Counts.Retransmits); got != relMaxAttempts-1 {
		t.Fatalf("Retransmits = %d, want %d (attempt budget)", got, relMaxAttempts-1)
	}
}

// TestReliableLocalBypass: intra-node sends never engage the reliability
// layer even when the node pair has a fault policy armed elsewhere.
func TestReliableLocalBypass(t *testing.T) {
	w, runAll := lossyWorld(t, 3, 1.0) // 100% loss on the 0<->1 fabric link
	done := false
	w.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 2, make([]byte, 128)) // node-local
	})
	w.K.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 2)
		done = true
	})
	runAll()
	if !done {
		t.Fatal("node-local send was routed through the (dead) fabric link")
	}
	if w.Faults.Counts.LinkDrops != 0 {
		t.Fatalf("local traffic hit the link policy: %d drops", w.Faults.Counts.LinkDrops)
	}
}

// TestReliableUnaffectedPairs: a lossy 0<->1 link must not perturb 0<->2
// (xeon) traffic — the reliability layer engages per directed node pair.
func TestReliableUnaffectedPairs(t *testing.T) {
	w, runAll := lossyWorld(t, 3, 0.5)
	var at sim.Time
	w.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 4, 2, make([]byte, 100))
	})
	w.K.Spawn("r4", func(p *sim.Proc) {
		w.Rank(4).Recv(p, 0, 2)
		at = p.Now()
	})
	runAll()
	// Same calibrated band as TestSendRecvRemoteEager: no retry inflation.
	if at < 80*sim.Microsecond || at > 130*sim.Microsecond {
		t.Fatalf("unaffected pair's latency perturbed: %s", at)
	}
	if w.Faults.Counts.Retransmits != 0 {
		t.Fatal("unaffected pair engaged the retransmit path")
	}
}
