// Package fmtmsg implements Pilot's stdio-inspired message format strings:
// parsing specs like "%d", "%100Lf" or "%*f", packing Go values to the
// canonical big-endian wire format, and unpacking on the receiving side.
// The format does not imply text conversion (exactly as the paper notes) —
// it describes binary element type and count, and provides the signature
// Pilot uses to catch writer/reader mismatches at run time.
package fmtmsg

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// ElemType enumerates the element types Pilot formats describe.
type ElemType int

// Element types, with their C conversion spellings.
const (
	Byte       ElemType = iota // %b — raw byte
	Char                       // %c — char
	Int16                      // %hd — short
	Int32                      // %d — int
	Int64                      // %ld — long long
	Uint32                     // %u — unsigned
	Uint64                     // %lu — unsigned long long
	Float32                    // %f — float
	Float64                    // %lf — double
	LongDouble                 // %Lf — PPC long double (double-double, 16 bytes)
)

// LongDoubleVal is the 16-byte IBM "double-double" long double of the PPC
// ABI, which the paper's 1600-byte benchmark payload (100 long doubles) is
// made of. Value = Hi + Lo.
type LongDoubleVal struct {
	Hi, Lo float64
}

// Size reports the wire size of one element in bytes.
func (e ElemType) Size() int {
	switch e {
	case Byte, Char:
		return 1
	case Int16:
		return 2
	case Int32, Uint32, Float32:
		return 4
	case Int64, Uint64, Float64:
		return 8
	case LongDouble:
		return 16
	default:
		panic(fmt.Sprintf("fmtmsg: unknown element type %d", int(e)))
	}
}

// Verb reports the C conversion spelling for the element type.
func (e ElemType) Verb() string {
	switch e {
	case Byte:
		return "b"
	case Char:
		return "c"
	case Int16:
		return "hd"
	case Int32:
		return "d"
	case Int64:
		return "ld"
	case Uint32:
		return "u"
	case Uint64:
		return "lu"
	case Float32:
		return "f"
	case Float64:
		return "lf"
	case LongDouble:
		return "Lf"
	default:
		return "?"
	}
}

// String implements fmt.Stringer.
func (e ElemType) String() string { return "%" + e.Verb() }

// Item is one conversion in a format: a count (fixed, or supplied at call
// time with '*') and an element type.
type Item struct {
	// Count is the fixed element count; 1 for a bare verb. Ignored when
	// Star is set.
	Count int
	// Star marks a '%*' conversion whose count is an extra argument.
	Star bool
	// Type is the element type.
	Type ElemType
}

// Spec is a parsed format string.
type Spec struct {
	// Format is the original string, for diagnostics.
	Format string
	// Items are the conversions in order.
	Items []Item
}

// Signature is a compact writer/reader compatibility code: same element
// sequence (types, star-ness) on both ends or the transfer is rejected.
// Fixed counts are included — reading fewer elements than were written is
// the classic MPI bug Pilot exists to catch — except that a '*' end
// matches any count of the same type (the paper's "%*d" example reads an
// array written as "%100d").
func (s *Spec) Signature() uint32 {
	h := fnv.New32a()
	for _, it := range s.Items {
		fmt.Fprintf(h, "|%s", it.Type.Verb())
	}
	return h.Sum32()
}

// MinWireSize reports the payload size in bytes for the fixed-count items
// (star items contribute zero; use WireSize with resolved counts).
func (s *Spec) MinWireSize() int {
	n := 0
	for _, it := range s.Items {
		if !it.Star {
			n += it.Count * it.Type.Size()
		}
	}
	return n
}

// String implements fmt.Stringer.
func (s *Spec) String() string {
	var b strings.Builder
	for i, it := range s.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('%')
		switch {
		case it.Star:
			b.WriteByte('*')
		case it.Count != 1:
			fmt.Fprintf(&b, "%d", it.Count)
		}
		b.WriteString(it.Type.Verb())
	}
	return b.String()
}
