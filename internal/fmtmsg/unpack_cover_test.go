package fmtmsg

import "testing"

// Table-driven coverage for every element type's unpack paths: correct
// scalar pointers, correct slices, wrong-type rejection, short slices.
func TestUnpackAllTypePaths(t *testing.T) {
	cases := []struct {
		format string
		pack   []any // args to Pack (count 3)
		scalar []any // args to Unpack single (count 1 format)
		sfmt   string
		wrong  any // a wrong-typed unpack target
	}{
		{"%3b", []any{[]byte{1, 2, 3}}, []any{new(byte)}, "%b", new(int16)},
		{"%3hd", []any{[]int16{-1, 2, -3}}, []any{new(int16)}, "%hd", new(byte)},
		{"%3d", []any{[]int32{4, -5, 6}}, []any{new(int32)}, "%d", new(float32)},
		{"%3ld", []any{[]int64{7, -8, 9}}, []any{new(int64)}, "%ld", new(int32)},
		{"%3u", []any{[]uint32{1, 2, 3}}, []any{new(uint32)}, "%u", new(int32)},
		{"%3lu", []any{[]uint64{4, 5, 6}}, []any{new(uint64)}, "%lu", new(uint32)},
		{"%3f", []any{[]float32{1.5, 2.5, 3.5}}, []any{new(float32)}, "%f", new(float64)},
		{"%3lf", []any{[]float64{1.5, 2.5, 3.5}}, []any{new(float64)}, "%lf", new(float32)},
		{"%3Lf", []any{make([]LongDoubleVal, 3)}, []any{new(LongDoubleVal)}, "%Lf", new(float64)},
	}
	for _, c := range cases {
		spec := MustParse(c.format)
		wire, err := spec.Pack(c.pack...)
		if err != nil {
			t.Fatalf("%s pack: %v", c.format, err)
		}
		// Slice round trip (covered elsewhere, re-checked cheaply).
		if err := spec.Unpack(wire, c.pack...); err != nil {
			t.Errorf("%s slice unpack: %v", c.format, err)
		}
		// Scalar pointer path.
		one := MustParse(c.sfmt)
		elem := wire[:one.Items[0].Type.Size()]
		if err := one.Unpack(elem, c.scalar...); err != nil {
			t.Errorf("%s scalar unpack: %v", c.sfmt, err)
		}
		// A scalar pointer for a count-3 item must be rejected.
		if err := spec.Unpack(wire, c.scalar...); err == nil {
			t.Errorf("%s: scalar target for count-3 item accepted", c.format)
		}
		// Wrong-typed target must be rejected.
		if err := one.Unpack(elem, c.wrong); err == nil {
			t.Errorf("%s: wrong-typed target %T accepted", c.sfmt, c.wrong)
		}
		// Short slice targets must be rejected per type.
		short := map[string]any{
			"%3b": make([]byte, 2), "%3hd": make([]int16, 2), "%3d": make([]int32, 2),
			"%3ld": make([]int64, 2), "%3u": make([]uint32, 2), "%3lu": make([]uint64, 2),
			"%3f": make([]float32, 2), "%3lf": make([]float64, 2), "%3Lf": make([]LongDoubleVal, 2),
		}[c.format]
		if err := spec.Unpack(wire, short); err == nil {
			t.Errorf("%s: short slice accepted", c.format)
		}
	}
	// Verb spellings round-trip for every type.
	for _, e := range []ElemType{Byte, Char, Int16, Int32, Int64, Uint32, Uint64, Float32, Float64, LongDouble} {
		if e.Size() <= 0 || e.Verb() == "?" || e.String() == "" {
			t.Errorf("type %d metadata incomplete", int(e))
		}
	}
}

// Every type's *pack* wrong-argument branch.
func TestPackWrongTypeAllPaths(t *testing.T) {
	wrong := map[string]any{
		"%b": int32(1), "%hd": byte(1), "%d": "x", "%ld": float64(1),
		"%u": int32(1), "%lu": uint32(1), "%f": float64(1), "%lf": float32(1), "%Lf": float64(1),
	}
	for f, arg := range wrong {
		if _, err := MustParse(f).Pack(arg); err == nil {
			t.Errorf("Pack(%s, %T) accepted", f, arg)
		}
	}
	// Scalar packs for every type (count-1 fast paths).
	ok := []struct {
		f string
		a any
	}{
		{"%b", byte(9)}, {"%hd", int16(-2)}, {"%d", int32(3)}, {"%ld", int64(-4)},
		{"%u", uint32(5)}, {"%lu", uint64(6)}, {"%f", float32(7)}, {"%lf", float64(8)},
		{"%Lf", LongDoubleVal{Hi: 1}}, {"%ld", int(11)},
	}
	for _, c := range ok {
		if _, err := MustParse(c.f).Pack(c.a); err != nil {
			t.Errorf("Pack(%s, %T): %v", c.f, c.a, err)
		}
	}
}
