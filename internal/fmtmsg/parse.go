package fmtmsg

import (
	"fmt"
	"sync"
)

// parseCache memoizes parsed formats; Pilot programs use a small set of
// literal formats on hot paths. Guarded by a mutex because parsing can be
// reached from outside the simulation (tests, tools).
var parseCache sync.Map // string -> *Spec

// Parse parses a Pilot format string such as "%d", "%100Lf" or "%*f %b".
// Whitespace between conversions is allowed and ignored.
func Parse(format string) (*Spec, error) {
	if v, ok := parseCache.Load(format); ok {
		return v.(*Spec), nil
	}
	s, err := parse(format)
	if err != nil {
		return nil, err
	}
	parseCache.Store(format, s)
	return s, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(format string) *Spec {
	s, err := Parse(format)
	if err != nil {
		panic(err)
	}
	return s
}

func parse(format string) (*Spec, error) {
	s := &Spec{Format: format}
	i := 0
	n := len(format)
	for i < n {
		c := format[i]
		if c == ' ' || c == '\t' {
			i++
			continue
		}
		if c != '%' {
			return nil, fmt.Errorf("fmtmsg: %q: unexpected %q at %d (conversions start with %%)", format, c, i)
		}
		i++
		it := Item{Count: 1}
		if i < n && format[i] == '*' {
			it.Star = true
			i++
		} else {
			start := i
			for i < n && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i > start {
				const maxCount = 1 << 28 // far beyond any 256 KB local store
				count := 0
				for _, d := range format[start:i] {
					count = count*10 + int(d-'0')
					if count > maxCount {
						return nil, fmt.Errorf("fmtmsg: %q: count overflows at %d", format, start)
					}
				}
				if count <= 0 {
					return nil, fmt.Errorf("fmtmsg: %q: count must be positive at %d", format, start)
				}
				it.Count = count
			}
		}
		var typ ElemType
		switch {
		case i < n && format[i] == 'b':
			typ, i = Byte, i+1
		case i < n && format[i] == 'c':
			typ, i = Char, i+1
		case i+1 < n && format[i] == 'h' && format[i+1] == 'd':
			typ, i = Int16, i+2
		case i < n && format[i] == 'd':
			typ, i = Int32, i+1
		case i+1 < n && format[i] == 'l' && format[i+1] == 'd':
			typ, i = Int64, i+2
		case i+1 < n && format[i] == 'l' && format[i+1] == 'u':
			typ, i = Uint64, i+2
		case i < n && format[i] == 'u':
			typ, i = Uint32, i+1
		case i+1 < n && format[i] == 'l' && format[i+1] == 'f':
			typ, i = Float64, i+2
		case i+1 < n && format[i] == 'L' && format[i+1] == 'f':
			typ, i = LongDouble, i+2
		case i < n && format[i] == 'f':
			typ, i = Float32, i+1
		default:
			return nil, fmt.Errorf("fmtmsg: %q: unknown conversion at %d", format, i)
		}
		it.Type = typ
		s.Items = append(s.Items, it)
	}
	if len(s.Items) == 0 {
		return nil, fmt.Errorf("fmtmsg: %q: no conversions", format)
	}
	return s, nil
}
