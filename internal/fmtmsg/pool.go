package fmtmsg

import (
	"fmt"
	"sync"
)

// wirePool recycles wire buffers across Pack/Unpack call sites. The
// endpoints pack into a pooled buffer, hand it to the transport (which
// snapshots or copies it before returning), and put it back — so steady
// traffic stops allocating per message.
var wirePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetWireBuf returns a zero-length pooled buffer with at least the given
// capacity. Pair with PutWireBuf once the transport no longer references
// the bytes.
func GetWireBuf(capacity int) *[]byte {
	bp := wirePool.Get().(*[]byte)
	if cap(*bp) < capacity {
		*bp = make([]byte, 0, capacity)
	}
	*bp = (*bp)[:0]
	return bp
}

// PutWireBuf recycles a buffer obtained from GetWireBuf.
func PutWireBuf(bp *[]byte) {
	if bp == nil {
		return
	}
	wirePool.Put(bp)
}

// PackInto encodes args like Pack but appends to buf, reallocating only
// when buf lacks capacity; it returns the extended slice. With a pooled
// buffer sized by WireSize this makes steady-state packing allocation-free.
func (s *Spec) PackInto(buf []byte, args ...any) ([]byte, error) {
	counts, dataArgs, err := s.splitArgs(args, false)
	if err != nil {
		return nil, err
	}
	total := 0
	for i, it := range s.Items {
		total += counts[i] * it.Type.Size()
	}
	if cap(buf)-len(buf) < total {
		nb := make([]byte, len(buf), len(buf)+total)
		copy(nb, buf)
		buf = nb
	}
	for i, it := range s.Items {
		buf, err = appendElems(buf, it.Type, counts[i], dataArgs[i], s.Format)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnpackFrom decodes one message from the front of data (e.g. out of a
// larger reassembly buffer) and returns the number of bytes consumed.
// Unlike Unpack it tolerates trailing bytes.
func (s *Spec) UnpackFrom(data []byte, args ...any) (int, error) {
	counts, dataArgs, err := s.splitArgs(args, true)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, it := range s.Items {
		total += counts[i] * it.Type.Size()
	}
	if len(data) < total {
		return 0, fmt.Errorf("fmtmsg: %q: wire payload is %d bytes, format describes %d", s.Format, len(data), total)
	}
	off := 0
	for i, it := range s.Items {
		n := counts[i] * it.Type.Size()
		if err := readElems(data[off:off+n], it.Type, counts[i], dataArgs[i], s.Format); err != nil {
			return 0, err
		}
		off += n
	}
	return off, nil
}
