package fmtmsg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Pack encodes args per the spec into the canonical big-endian wire
// format. For each item: a '*' conversion first consumes an int count
// argument, then the data argument; count-1 items accept a scalar or a
// slice; count-n items require a slice with at least n elements.
func (s *Spec) Pack(args ...any) ([]byte, error) {
	return s.PackInto(nil, args...)
}

// Unpack decodes wire data into args: pointers to scalars for count-1
// items, or slices with capacity for the item count. '*' conversions
// consume an int count argument first, like the paper's
// PI_Read(ch, "%*d", 100, array).
func (s *Spec) Unpack(data []byte, args ...any) error {
	counts, dataArgs, err := s.splitArgs(args, true)
	if err != nil {
		return err
	}
	total := 0
	for i, it := range s.Items {
		total += counts[i] * it.Type.Size()
	}
	if len(data) != total {
		return fmt.Errorf("fmtmsg: %q: wire payload is %d bytes, format describes %d", s.Format, len(data), total)
	}
	off := 0
	for i, it := range s.Items {
		n := counts[i] * it.Type.Size()
		if err := readElems(data[off:off+n], it.Type, counts[i], dataArgs[i], s.Format); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// WireSize reports the payload size the given call-time arguments produce;
// it resolves '*' counts.
func (s *Spec) WireSize(args ...any) (int, error) {
	counts, _, err := s.splitArgs(args, false)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, it := range s.Items {
		total += counts[i] * it.Type.Size()
	}
	return total, nil
}

// splitArgs resolves per-item counts and the data argument for each item.
func (s *Spec) splitArgs(args []any, unpack bool) (counts []int, dataArgs []any, err error) {
	ai := 0
	next := func() (any, error) {
		if ai >= len(args) {
			return nil, fmt.Errorf("fmtmsg: %q: not enough arguments (%d supplied)", s.Format, len(args))
		}
		a := args[ai]
		ai++
		return a, nil
	}
	for _, it := range s.Items {
		count := it.Count
		if it.Star {
			a, err := next()
			if err != nil {
				return nil, nil, err
			}
			switch v := a.(type) {
			case int:
				count = v
			case int32:
				count = int(v)
			case int64:
				count = int(v)
			default:
				return nil, nil, fmt.Errorf("fmtmsg: %q: '*' count must be an int, got %T", s.Format, a)
			}
			if count <= 0 {
				return nil, nil, fmt.Errorf("fmtmsg: %q: '*' count %d must be positive", s.Format, count)
			}
		}
		a, err := next()
		if err != nil {
			return nil, nil, err
		}
		counts = append(counts, count)
		dataArgs = append(dataArgs, a)
	}
	if ai != len(args) {
		return nil, nil, fmt.Errorf("fmtmsg: %q: %d excess argument(s)", s.Format, len(args)-ai)
	}
	return counts, dataArgs, nil
}

func argErr(format string, typ ElemType, arg any, unpack bool) error {
	dir := "write"
	if unpack {
		dir = "read"
	}
	return fmt.Errorf("fmtmsg: %q: cannot %s %s from argument of type %T", format, dir, typ, arg)
}

func shortErr(format string, typ ElemType, want, have int) error {
	return fmt.Errorf("fmtmsg: %q: %s needs %d elements but the slice holds %d", format, typ, want, have)
}

// appendElems encodes count elements of typ from arg.
func appendElems(buf []byte, typ ElemType, count int, arg any, format string) ([]byte, error) {
	switch typ {
	case Byte, Char:
		switch v := arg.(type) {
		case byte:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return append(buf, v), nil
		case []byte:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			return append(buf, v[:count]...), nil
		}
	case Int16:
		switch v := arg.(type) {
		case int16:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint16(buf, uint16(v)), nil
		case []int16:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint16(buf, uint16(x))
			}
			return buf, nil
		}
	case Int32:
		switch v := arg.(type) {
		case int32:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint32(buf, uint32(v)), nil
		case int:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			if int64(v) > math.MaxInt32 || int64(v) < math.MinInt32 {
				return nil, fmt.Errorf("fmtmsg: %q: %d overflows %%d (32-bit)", format, v)
			}
			return binary.BigEndian.AppendUint32(buf, uint32(int32(v))), nil
		case []int32:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint32(buf, uint32(x))
			}
			return buf, nil
		}
	case Int64:
		switch v := arg.(type) {
		case int64:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint64(buf, uint64(v)), nil
		case int:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint64(buf, uint64(int64(v))), nil
		case []int64:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint64(buf, uint64(x))
			}
			return buf, nil
		}
	case Uint32:
		switch v := arg.(type) {
		case uint32:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint32(buf, v), nil
		case []uint32:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint32(buf, x)
			}
			return buf, nil
		}
	case Uint64:
		switch v := arg.(type) {
		case uint64:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint64(buf, v), nil
		case []uint64:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint64(buf, x)
			}
			return buf, nil
		}
	case Float32:
		switch v := arg.(type) {
		case float32:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint32(buf, math.Float32bits(v)), nil
		case []float32:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(x))
			}
			return buf, nil
		}
	case Float64:
		switch v := arg.(type) {
		case float64:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			return binary.BigEndian.AppendUint64(buf, math.Float64bits(v)), nil
		case []float64:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
			}
			return buf, nil
		}
	case LongDouble:
		switch v := arg.(type) {
		case LongDoubleVal:
			if count != 1 {
				return nil, shortErr(format, typ, count, 1)
			}
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Hi))
			return binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Lo)), nil
		case []LongDoubleVal:
			if len(v) < count {
				return nil, shortErr(format, typ, count, len(v))
			}
			for _, x := range v[:count] {
				buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.Hi))
				buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x.Lo))
			}
			return buf, nil
		}
	}
	return nil, argErr(format, typ, arg, false)
}

// readElems decodes count elements of typ from data into arg.
func readElems(data []byte, typ ElemType, count int, arg any, format string) error {
	switch typ {
	case Byte, Char:
		switch v := arg.(type) {
		case *byte:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = data[0]
			return nil
		case []byte:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			copy(v, data[:count])
			return nil
		}
	case Int16:
		switch v := arg.(type) {
		case *int16:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = int16(binary.BigEndian.Uint16(data))
			return nil
		case []int16:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = int16(binary.BigEndian.Uint16(data[i*2:]))
			}
			return nil
		}
	case Int32:
		switch v := arg.(type) {
		case *int32:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = int32(binary.BigEndian.Uint32(data))
			return nil
		case *int:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = int(int32(binary.BigEndian.Uint32(data)))
			return nil
		case []int32:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = int32(binary.BigEndian.Uint32(data[i*4:]))
			}
			return nil
		}
	case Int64:
		switch v := arg.(type) {
		case *int64:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = int64(binary.BigEndian.Uint64(data))
			return nil
		case []int64:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = int64(binary.BigEndian.Uint64(data[i*8:]))
			}
			return nil
		}
	case Uint32:
		switch v := arg.(type) {
		case *uint32:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = binary.BigEndian.Uint32(data)
			return nil
		case []uint32:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = binary.BigEndian.Uint32(data[i*4:])
			}
			return nil
		}
	case Uint64:
		switch v := arg.(type) {
		case *uint64:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = binary.BigEndian.Uint64(data)
			return nil
		case []uint64:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = binary.BigEndian.Uint64(data[i*8:])
			}
			return nil
		}
	case Float32:
		switch v := arg.(type) {
		case *float32:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = math.Float32frombits(binary.BigEndian.Uint32(data))
			return nil
		case []float32:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = math.Float32frombits(binary.BigEndian.Uint32(data[i*4:]))
			}
			return nil
		}
	case Float64:
		switch v := arg.(type) {
		case *float64:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			*v = math.Float64frombits(binary.BigEndian.Uint64(data))
			return nil
		case []float64:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i] = math.Float64frombits(binary.BigEndian.Uint64(data[i*8:]))
			}
			return nil
		}
	case LongDouble:
		switch v := arg.(type) {
		case *LongDoubleVal:
			if count != 1 {
				return shortErr(format, typ, count, 1)
			}
			v.Hi = math.Float64frombits(binary.BigEndian.Uint64(data))
			v.Lo = math.Float64frombits(binary.BigEndian.Uint64(data[8:]))
			return nil
		case []LongDoubleVal:
			if len(v) < count {
				return shortErr(format, typ, count, len(v))
			}
			for i := 0; i < count; i++ {
				v[i].Hi = math.Float64frombits(binary.BigEndian.Uint64(data[i*16:]))
				v[i].Lo = math.Float64frombits(binary.BigEndian.Uint64(data[i*16+8:]))
			}
			return nil
		}
	}
	return argErr(format, typ, arg, true)
}
