package fmtmsg

import (
	"strings"
	"testing"
)

// FuzzParse asserts the format parser's robustness contract: any input —
// malformed counts, truncated conversions, garbage bytes — either parses
// into a well-formed Spec or returns an error. It must never panic, and
// an accepted Spec must survive its derived operations (Signature,
// MinWireSize, String) without blowing up.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"%d", "%100d", "%16lf", "%*f %b", "%2hd %3lu", "%1Lf",
		"",                        // no conversions
		"%",                       // truncated
		"%0d",                     // zero count
		"%-5d",                    // negative count
		"%999999999999999999999d", // count overflow
		"%q",                      // unknown conversion
		"%100",                    // count without type
		"plain text",              // no % at all
		"%d extra",                // trailing garbage
		"% d", "%\x00d", "%*", "%l", "%h", "%L",
		"%3b%4c%5u", "  %d  ", "\t%f\t",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, format string) {
		spec, err := Parse(format)
		if err != nil {
			if spec != nil {
				t.Fatalf("Parse(%q) returned both a spec and an error", format)
			}
			return
		}
		if spec == nil {
			t.Fatalf("Parse(%q) returned nil, nil", format)
		}
		if len(spec.Items) == 0 {
			t.Fatalf("Parse(%q) accepted a spec with no conversions", format)
		}
		for i, it := range spec.Items {
			if !it.Star && it.Count <= 0 {
				t.Fatalf("Parse(%q) item %d has non-positive count %d", format, i, it.Count)
			}
		}
		// Derived operations on an accepted spec must not panic either.
		_ = spec.Signature()
		if n := spec.MinWireSize(); n < 0 {
			t.Fatalf("Parse(%q): negative MinWireSize %d", format, n)
		}
		if s := spec.String(); !strings.Contains(s, "%") {
			t.Fatalf("Parse(%q): String() lost the conversions: %q", format, s)
		}
	})
}
