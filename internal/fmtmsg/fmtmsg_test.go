package fmtmsg

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		format string
		items  []Item
	}{
		{"%d", []Item{{Count: 1, Type: Int32}}},
		{"%b", []Item{{Count: 1, Type: Byte}}},
		{"%100d", []Item{{Count: 100, Type: Int32}}},
		{"%100Lf", []Item{{Count: 100, Type: LongDouble}}},
		{"%*d", []Item{{Count: 1, Star: true, Type: Int32}}},
		{"%1000f", []Item{{Count: 1000, Type: Float32}}},
		{"%d %lf", []Item{{Count: 1, Type: Int32}, {Count: 1, Type: Float64}}},
		{"%hd%ld%u%lu%c", []Item{
			{Count: 1, Type: Int16}, {Count: 1, Type: Int64},
			{Count: 1, Type: Uint32}, {Count: 1, Type: Uint64}, {Count: 1, Type: Char},
		}},
	}
	for _, c := range cases {
		s, err := Parse(c.format)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.format, err)
		}
		if !reflect.DeepEqual(s.Items, c.items) {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.format, s.Items, c.items)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, f := range []string{"", "d", "%q", "%0d", "%-1d", "% d", "%d x", "%"} {
		if _, err := Parse(f); err == nil {
			t.Errorf("Parse(%q) succeeded", f)
		}
	}
}

func TestParseCacheReturnsSameSpec(t *testing.T) {
	a := MustParse("%17d")
	b := MustParse("%17d")
	if a != b {
		t.Fatal("parse cache miss for identical literal")
	}
}

func TestPackUnpackRoundTripScalars(t *testing.T) {
	s := MustParse("%b %c %hd %d %ld %u %lu %f %lf %Lf")
	wire, err := s.Pack(
		byte(7), byte('x'), int16(-5), int32(-100000), int64(-1<<40),
		uint32(4000000000), uint64(1<<60), float32(1.5), float64(2.25),
		LongDoubleVal{Hi: 3.5, Lo: 1e-30},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 1+1+2+4+8+4+8+4+8+16 {
		t.Fatalf("wire size %d", len(wire))
	}
	var (
		b, c byte
		h    int16
		d    int32
		l    int64
		u    uint32
		lu   uint64
		f    float32
		lf   float64
		Lf   LongDoubleVal
	)
	if err := s.Unpack(wire, &b, &c, &h, &d, &l, &u, &lu, &f, &lf, &Lf); err != nil {
		t.Fatal(err)
	}
	if b != 7 || c != 'x' || h != -5 || d != -100000 || l != -1<<40 ||
		u != 4000000000 || lu != 1<<60 || f != 1.5 || lf != 2.25 ||
		Lf.Hi != 3.5 || Lf.Lo != 1e-30 {
		t.Fatalf("round trip mismatch: %v %v %v %v %v %v %v %v %v %+v", b, c, h, d, l, u, lu, f, lf, Lf)
	}
}

func TestPackUnpackArrays(t *testing.T) {
	s := MustParse("%100d")
	in := make([]int32, 100)
	for i := range in {
		in[i] = int32(i * 3)
	}
	wire, err := s.Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 400 {
		t.Fatalf("wire = %d bytes", len(wire))
	}
	out := make([]int32, 100)
	if err := s.Unpack(wire, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("array round trip mismatch")
	}
}

func TestStarCountPaperExample(t *testing.T) {
	// Paper fig 3/4: writer uses "%100d", reader uses "%*d" with count 100.
	w := MustParse("%100d")
	r := MustParse("%*d")
	in := make([]int32, 100)
	for i := range in {
		in[i] = int32(i)
	}
	wire, err := w.Pack(in)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 100)
	if err := r.Unpack(wire, 100, out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("star read mismatch")
	}
	// Writer can also supply the count at run time.
	wire2, err := r.Pack(100, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire2) != len(wire) {
		t.Fatalf("star pack size %d vs %d", len(wire2), len(wire))
	}
}

func TestSignatureCompatibility(t *testing.T) {
	if MustParse("%100d").Signature() != MustParse("%*d").Signature() {
		t.Fatal("star and fixed counts of same type must share a signature")
	}
	if MustParse("%100d").Signature() != MustParse("%5d").Signature() {
		t.Fatal("counts must not change the signature (checked by size at run time)")
	}
	if MustParse("%d").Signature() == MustParse("%f").Signature() {
		t.Fatal("different types share a signature")
	}
	if MustParse("%d %f").Signature() == MustParse("%f %d").Signature() {
		t.Fatal("order must matter")
	}
}

func TestPackErrors(t *testing.T) {
	s := MustParse("%10d")
	if _, err := s.Pack(make([]int32, 5)); err == nil || !strings.Contains(err.Error(), "10 elements") {
		t.Fatalf("short slice: %v", err)
	}
	if _, err := s.Pack("wrong"); err == nil {
		t.Fatal("wrong type accepted")
	}
	if _, err := s.Pack(); err == nil {
		t.Fatal("missing args accepted")
	}
	if _, err := s.Pack(make([]int32, 10), 5); err == nil {
		t.Fatal("excess args accepted")
	}
	star := MustParse("%*d")
	if _, err := star.Pack(-1, make([]int32, 5)); err == nil {
		t.Fatal("negative star count accepted")
	}
	if _, err := star.Pack("n", make([]int32, 5)); err == nil {
		t.Fatal("non-int star count accepted")
	}
	if err := s.Unpack(make([]byte, 39), make([]int32, 10)); err == nil {
		t.Fatal("truncated wire accepted")
	}
	if _, err := s.Pack(5); err == nil {
		t.Fatal("scalar for count-10 item accepted")
	}
}

func TestIntOverflowChecked(t *testing.T) {
	s := MustParse("%d")
	if _, err := s.Pack(int(math.MaxInt32) + 1); err == nil {
		t.Fatal("int overflowing 32-bit conversion accepted")
	}
	wire, err := s.Pack(int(-7))
	if err != nil {
		t.Fatal(err)
	}
	var out int
	if err := s.Unpack(wire, &out); err != nil || out != -7 {
		t.Fatalf("int round trip: %d %v", out, err)
	}
}

func TestWireSize(t *testing.T) {
	s := MustParse("%*Lf")
	n, err := s.WireSize(100, make([]LongDoubleVal, 100))
	if err != nil || n != 1600 {
		t.Fatalf("WireSize = %d, %v (paper payload must be 1600)", n, err)
	}
	if MustParse("%100Lf").MinWireSize() != 1600 {
		t.Fatal("MinWireSize(%100Lf) != 1600")
	}
}

func TestSpecString(t *testing.T) {
	for _, f := range []string{"%100d", "%*f %b", "%d %lf %Lf"} {
		if got := MustParse(f).String(); got != f {
			t.Errorf("String() = %q, want %q", got, f)
		}
	}
}

// Property: Pack → Unpack is the identity on float64 arrays of any size.
func TestRoundTripPropertyFloat64(t *testing.T) {
	prop := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := MustParse("%*lf")
		wire, err := s.Pack(len(vals), vals)
		if err != nil {
			return false
		}
		out := make([]float64, len(vals))
		if err := s.Unpack(wire, len(vals), out); err != nil {
			return false
		}
		for i := range vals {
			if vals[i] != out[i] && !(math.IsNaN(vals[i]) && math.IsNaN(out[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics and either errors or produces a spec that
// round-trips through String -> Parse with identical items.
func TestParseRobustnessProperty(t *testing.T) {
	prop := func(raw string) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s, err := Parse(raw)
		if err != nil {
			return true // rejected garbage is fine
		}
		s2, err := Parse(s.String())
		if err != nil {
			return false // canonical form must re-parse
		}
		return reflect.DeepEqual(s.Items, s2.Items)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// And a few hand-picked near-miss strings.
	for _, f := range []string{"%d%", "%*", "%**d", "%9999999999999999999d", "% 100d", "%100", "%L", "%h"} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", f, r)
				}
			}()
			Parse(f)
		}()
	}
}

// Property: wire length always equals count*elemsize for every type.
func TestWireLengthProperty(t *testing.T) {
	types := []struct {
		format string
		mk     func(n int) any
		size   int
	}{
		{"%*b", func(n int) any { return make([]byte, n) }, 1},
		{"%*hd", func(n int) any { return make([]int16, n) }, 2},
		{"%*d", func(n int) any { return make([]int32, n) }, 4},
		{"%*ld", func(n int) any { return make([]int64, n) }, 8},
		{"%*u", func(n int) any { return make([]uint32, n) }, 4},
		{"%*lu", func(n int) any { return make([]uint64, n) }, 8},
		{"%*f", func(n int) any { return make([]float32, n) }, 4},
		{"%*lf", func(n int) any { return make([]float64, n) }, 8},
		{"%*Lf", func(n int) any { return make([]LongDoubleVal, n) }, 16},
	}
	for _, tc := range types {
		s := MustParse(tc.format)
		for _, n := range []int{1, 3, 100} {
			wire, err := s.Pack(n, tc.mk(n))
			if err != nil {
				t.Fatalf("%s n=%d: %v", tc.format, n, err)
			}
			if len(wire) != n*tc.size {
				t.Fatalf("%s n=%d: wire %d bytes, want %d", tc.format, n, len(wire), n*tc.size)
			}
		}
	}
}
