package fmtmsg

import (
	"bytes"
	"testing"
)

// TestPackIntoUnpackFrom checks the pooled pack path round-trips and that
// UnpackFrom tolerates trailing bytes while reporting the consumed size.
func TestPackIntoUnpackFrom(t *testing.T) {
	spec := MustParse("%4d %b")
	arr := []int32{1, -2, 3, -4}
	bp := GetWireBuf(64)
	wire, err := spec.PackInto(*bp, arr, byte(9))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spec.Pack(arr, byte(9))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, ref) {
		t.Fatalf("PackInto produced %x, Pack produced %x", wire, ref)
	}
	got := make([]int32, 4)
	var gb byte
	n, err := spec.UnpackFrom(append(wire, 0xAA, 0xBB), got, &gb)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ref) {
		t.Fatalf("UnpackFrom consumed %d bytes, want %d", n, len(ref))
	}
	if gb != 9 || got[1] != -2 {
		t.Fatalf("round trip corrupted: %v %d", got, gb)
	}
	*bp = wire[:0]
	PutWireBuf(bp)
}

// BenchmarkPack measures the allocating baseline; BenchmarkPackIntoPooled
// is the same encode through the wire-buffer pool. The pooled path should
// report ~0 allocs/op versus one buffer per call here.
func BenchmarkPack(b *testing.B) {
	spec := MustParse("%256d")
	arr := make([]int32, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Pack(arr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackIntoPooled(b *testing.B) {
	spec := MustParse("%256d")
	arr := make([]int32, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp := GetWireBuf(1024)
		wire, err := spec.PackInto(*bp, arr)
		if err != nil {
			b.Fatal(err)
		}
		*bp = wire[:0]
		PutWireBuf(bp)
	}
}
