// Package critpath computes, from a run's correlated transfer spans, the
// causal critical path of every transfer and a per-stage blame report:
// where each end-to-end microsecond went, split into service (the stage
// doing its own work) and queueing (the stage blocked behind another
// transfer occupying the same resource — a Co-Pilot service loop, an SPE's
// MFC DMA engine, a NIC link, a mailbox decode).
//
// The analyzer is pure post-processing over trace.Span data: it never
// touches the simulation, so it is zero-cost by construction, and it is
// deterministic — the same spans produce byte-identical reports.
//
// Attribution is exact by design. Each transfer's interval [Start, End] is
// swept boundary to boundary; every instant is attributed to exactly one
// stage (the latest-starting phase active at that instant — the most
// downstream work the transfer was doing), so the per-stage durations of a
// transfer sum to its end-to-end latency with zero rounding error.
package critpath

import (
	"sort"

	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

// GapKind is the pseudo-stage for instants no recorded phase covers —
// wire propagation between an injection end and a delivery, or protocol
// windows the instrumentation does not slice. Keeping it explicit is what
// lets the stage attributions sum exactly to the end-to-end latency.
const GapKind trace.PhaseKind = -1

// StageName renders a stage, mapping the gap pseudo-stage to a readable
// label.
func StageName(k trace.PhaseKind) string {
	if k == GapKind {
		return "wire-gap"
	}
	return k.String()
}

// Options tune the analysis.
type Options struct {
	// ProcNodes maps process/track labels to node ids. When present, the
	// analyzer builds per-node link resources from wire-occupying phases,
	// so MPI send/wait stages can be split into service vs link queueing.
	// Without it those stages count entirely as service.
	ProcNodes map[string]int
	// TopPairs bounds the victim/aggressor pairs kept in the report
	// (0 = DefaultTopPairs).
	TopPairs int
}

// DefaultTopPairs is the victim/aggressor pair cap when Options.TopPairs
// is zero.
const DefaultTopPairs = 10

// StageBlame is one stage's share of a critical path.
type StageBlame struct {
	Phase trace.PhaseKind
	// Service is time the stage spent doing its own work (or waiting on
	// physics: wire latency, DMA of this very transfer). Queue is time the
	// stage was blocked behind other transfers occupying its resource.
	Service, Queue sim.Time
}

// Total is the stage's full critical-path share.
func (sb StageBlame) Total() sim.Time { return sb.Service + sb.Queue }

// Transfer is one transfer's decomposed critical path.
type Transfer struct {
	ID       int64
	Channel  int
	ChanType int
	Bytes    int
	Start    sim.Time
	End      sim.Time
	// Stages, ordered by stage kind, partition [Start, End] exactly:
	// the sum of Service+Queue over all stages equals End-Start.
	Stages []StageBlame
}

// Dur is the transfer's end-to-end latency.
func (t Transfer) Dur() sim.Time { return t.End - t.Start }

// StageTotal sums service+queue attributed to one stage kind.
func (t Transfer) StageTotal(k trace.PhaseKind) sim.Time {
	for _, sb := range t.Stages {
		if sb.Phase == k {
			return sb.Total()
		}
	}
	return 0
}

// TypeBlame aggregates every analyzed transfer of one channel type.
type TypeBlame struct {
	ChanType  int
	Transfers int
	// Total is the summed critical-path time; Stages partitions it.
	Total  sim.Time
	Stages []StageBlame
}

// Pair is one victim/aggressor contention edge: how long transfer Victim
// sat on the critical path blocked behind transfer Aggressor's occupancy
// of Resource.
type Pair struct {
	Resource          string
	Victim, Aggressor int64
	Blocked           sim.Time
}

// Report is the full analysis result.
type Report struct {
	Transfers []Transfer
	Types     []TypeBlame
	// Pairs lists the top victim/aggressor contention edges, most blocked
	// time first.
	Pairs []Pair
	// QueueTotal is the run-wide critical-path time attributed to
	// queueing; CritTotal the summed critical paths.
	QueueTotal sim.Time
	CritTotal  sim.Time
}

// occ is one resource-occupancy interval and its owning transfer.
type occ struct {
	start, end sim.Time
	xfer       int64
}

// resList is one resource's occupancy intervals sorted by start time,
// with a prefix max of interval ends so overlap queries can binary-search
// a valid lower bound even when intervals nest.
type resList struct {
	occs []occ
	// maxEnd[i] = max(occs[0..i].end) — non-decreasing by construction.
	maxEnd []sim.Time
}

// resourceIndex holds per-resource occupancy interval lists.
type resourceIndex map[string]*resList

// overlapOther accumulates, for the window [a,b), the sub-intervals during
// which the resource is occupied by a transfer other than self. Results
// are appended to into as (aggressor, duration) cuts; the total cut time
// is returned. Occupancy lists are sorted; overlapping occupancies (which
// a serial resource should not produce) are handled by clipping the scan
// cursor so no instant is double-counted.
func (ri resourceIndex) overlapOther(res string, a, b sim.Time, self int64, cut func(aggressor int64, d sim.Time)) sim.Time {
	rl := ri[res]
	if rl == nil || len(rl.occs) == 0 || a >= b {
		return 0
	}
	list := rl.occs
	// First interval that could overlap [a,b): the list is start-sorted, so
	// individual ends are not monotonic (intervals may nest), but the prefix
	// max of ends is — binary search that for the first end past a.
	lo := sort.Search(len(list), func(i int) bool { return rl.maxEnd[i] > a })
	var total sim.Time
	cursor := a
	for i := lo; i < len(list) && list[i].start < b; i++ {
		o := list[i]
		if o.xfer == self {
			continue
		}
		s, e := o.start, o.end
		if s < cursor {
			s = cursor
		}
		if e > b {
			e = b
		}
		if e <= s {
			continue
		}
		total += e - s
		cursor = e
		if cut != nil {
			cut(o.xfer, e-s)
		}
	}
	return total
}

// wireKind reports whether a phase occupies the sender-side wire path.
func wireKind(k trace.PhaseKind) bool {
	return k == trace.PhaseMPISend || k == trace.PhaseRelay || k == trace.PhaseChunkRelay
}

// Analyze decomposes every span into its critical path and builds the
// blame report. Spans with no primary phases are skipped.
func Analyze(spans []trace.Span, opt Options) *Report {
	// Pass 1: copilot track detection — a proc that decoded at least one
	// request is a Co-Pilot service loop; its service-ish phases define the
	// loop's occupancy.
	copilotProc := map[string]bool{}
	for _, sp := range spans {
		for _, pe := range sp.Phases {
			if pe.Phase == trace.PhaseCoPilotService {
				copilotProc[pe.Proc] = true
			}
		}
	}

	// Pass 2: resource occupancy index.
	ri := resourceIndex{}
	add := func(res string, pe trace.PhaseEvent) {
		if pe.End > pe.Start {
			rl := ri[res]
			if rl == nil {
				rl = &resList{}
				ri[res] = rl
			}
			rl.occs = append(rl.occs, occ{pe.Start, pe.End, pe.Xfer})
		}
	}
	for _, sp := range spans {
		for _, pe := range sp.Phases {
			switch {
			case pe.Phase == trace.PhaseChunkDMA:
				add("mfc-dma/"+pe.Proc, pe)
			case pe.Phase == trace.PhaseMailboxReq:
				add("mailbox/"+pe.Proc, pe)
			case copilotProc[pe.Proc] &&
				(pe.Phase == trace.PhaseCoPilotService || pe.Phase == trace.PhaseCopy ||
					pe.Phase == trace.PhaseRelay || pe.Phase == trace.PhaseChunkRelay):
				add("copilot/"+pe.Proc, pe)
			}
			if opt.ProcNodes != nil && wireKind(pe.Phase) {
				if node, ok := opt.ProcNodes[pe.Proc]; ok {
					add(linkRes(node), pe)
				}
			}
		}
	}
	for _, rl := range ri {
		list := rl.occs
		sort.Slice(list, func(i, j int) bool {
			if list[i].start != list[j].start {
				return list[i].start < list[j].start
			}
			return list[i].xfer < list[j].xfer
		})
		rl.maxEnd = make([]sim.Time, len(list))
		max := sim.Time(0)
		for i, o := range list {
			if o.end > max {
				max = o.end
			}
			rl.maxEnd[i] = max
		}
	}

	// Pass 3: per-span sweep + queue split.
	r := &Report{}
	pairAcc := map[Pair]sim.Time{}
	for _, sp := range spans {
		tr, ok := analyzeSpan(sp, ri, copilotProc, opt, pairAcc)
		if !ok {
			continue
		}
		r.Transfers = append(r.Transfers, tr)
	}
	sort.Slice(r.Transfers, func(i, j int) bool {
		if r.Transfers[i].Start != r.Transfers[j].Start {
			return r.Transfers[i].Start < r.Transfers[j].Start
		}
		return r.Transfers[i].ID < r.Transfers[j].ID
	})

	// Aggregate per channel type.
	byType := map[int]*TypeBlame{}
	for _, tr := range r.Transfers {
		tb, ok := byType[tr.ChanType]
		if !ok {
			tb = &TypeBlame{ChanType: tr.ChanType}
			byType[tr.ChanType] = tb
		}
		tb.Transfers++
		tb.Total += tr.Dur()
		for _, sb := range tr.Stages {
			merged := false
			for i := range tb.Stages {
				if tb.Stages[i].Phase == sb.Phase {
					tb.Stages[i].Service += sb.Service
					tb.Stages[i].Queue += sb.Queue
					merged = true
					break
				}
			}
			if !merged {
				tb.Stages = append(tb.Stages, sb)
			}
			r.QueueTotal += sb.Queue
		}
		r.CritTotal += tr.Dur()
	}
	types := make([]int, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Ints(types)
	for _, t := range types {
		tb := byType[t]
		sortStages(tb.Stages)
		r.Types = append(r.Types, *tb)
	}

	// Victim/aggressor pairs, worst first.
	for p, d := range pairAcc {
		p.Blocked = d
		r.Pairs = append(r.Pairs, p)
	}
	sort.Slice(r.Pairs, func(i, j int) bool {
		a, b := r.Pairs[i], r.Pairs[j]
		if a.Blocked != b.Blocked {
			return a.Blocked > b.Blocked
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		return a.Aggressor < b.Aggressor
	})
	top := opt.TopPairs
	if top <= 0 {
		top = DefaultTopPairs
	}
	if len(r.Pairs) > top {
		r.Pairs = r.Pairs[:top]
	}
	return r
}

// sortStages orders stage blames by pipeline position (stage kind value,
// gap pseudo-stage last).
func sortStages(st []StageBlame) {
	sort.Slice(st, func(i, j int) bool {
		a, b := st[i].Phase, st[j].Phase
		if (a == GapKind) != (b == GapKind) {
			return b == GapKind
		}
		return a < b
	})
}

func linkRes(node int) string { return "link/node" + itoa(node) }

// itoa avoids pulling strconv into the hot loop signature; small ints only.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// analyzeSpan sweeps one span's primary phases into an exact stage
// partition of [Start, End], splitting each attributed slice into service
// vs queueing against the resource occupancy index.
func analyzeSpan(sp trace.Span, ri resourceIndex, copilotProc map[string]bool, opt Options, pairAcc map[Pair]sim.Time) (Transfer, bool) {
	primary := make([]trace.PhaseEvent, 0, len(sp.Phases))
	for _, pe := range sp.Phases {
		if !pe.Phase.IsAnnotation() {
			primary = append(primary, pe)
		}
	}
	if len(primary) == 0 || sp.End <= sp.Start {
		return Transfer{}, false
	}

	// The span's own Co-Pilot (for mailbox-wait queue attribution) and
	// wire-sender node (for MPI-wait link attribution).
	ownCopilot := ""
	wireNode, haveWireNode := 0, false
	for _, pe := range primary {
		if ownCopilot == "" && pe.Phase == trace.PhaseCoPilotService {
			ownCopilot = pe.Proc
		}
		if !haveWireNode && wireKind(pe.Phase) && opt.ProcNodes != nil {
			if n, ok := opt.ProcNodes[pe.Proc]; ok {
				wireNode, haveWireNode = n, true
			}
		}
	}

	// Boundary sweep. Boundaries are every phase start/end clamped to the
	// span, deduplicated and sorted.
	bounds := make([]sim.Time, 0, 2*len(primary)+2)
	bounds = append(bounds, sp.Start, sp.End)
	for _, pe := range primary {
		if pe.Start > sp.Start && pe.Start < sp.End {
			bounds = append(bounds, pe.Start)
		}
		if pe.End > sp.Start && pe.End < sp.End {
			bounds = append(bounds, pe.End)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}

	stage := map[trace.PhaseKind]*StageBlame{}
	getStage := func(k trace.PhaseKind) *StageBlame {
		sb, ok := stage[k]
		if !ok {
			sb = &StageBlame{Phase: k}
			stage[k] = sb
		}
		return sb
	}
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		// Winner: the latest-starting phase covering [a,b) — the most
		// downstream activity. Ties break toward the later pipeline stage,
		// then the lexically larger track, for determinism.
		var win *trace.PhaseEvent
		for j := range primary {
			pe := &primary[j]
			// Covering [a,b) means Start <= a and End >= b; zero-length
			// phases never win.
			if pe.Start > a || pe.End < b || pe.End == pe.Start {
				continue
			}
			if win == nil || later(pe, win) {
				win = pe
			}
		}
		if win == nil {
			getStage(GapKind).Service += b - a
			continue
		}
		sb := getStage(win.Phase)
		res := victimResource(win, ownCopilot, wireNode, haveWireNode, copilotProc)
		if res == "" {
			sb.Service += b - a
			continue
		}
		q := ri.overlapOther(res, a, b, sp.ID, func(aggressor int64, d sim.Time) {
			pairAcc[Pair{Resource: res, Victim: sp.ID, Aggressor: aggressor}] += d
		})
		sb.Queue += q
		sb.Service += (b - a) - q
	}

	tr := Transfer{
		ID: sp.ID, Channel: sp.Channel, ChanType: sp.ChanType, Bytes: sp.Bytes,
		Start: sp.Start, End: sp.End,
	}
	for _, sb := range stage {
		tr.Stages = append(tr.Stages, *sb)
	}
	sortStages(tr.Stages)
	return tr, true
}

// later reports whether phase a should win attribution over b: later
// start, then later stage kind, then larger proc label.
func later(a, b *trace.PhaseEvent) bool {
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	if a.Phase != b.Phase {
		return a.Phase > b.Phase
	}
	return a.Proc > b.Proc
}

// victimResource maps a winning phase to the resource its wait can queue
// on, or "" when the stage has no queueing dimension (pure execution, or
// the data needed to resolve the resource is absent).
func victimResource(pe *trace.PhaseEvent, ownCopilot string, wireNode int, haveWireNode bool, copilotProc map[string]bool) string {
	switch pe.Phase {
	case trace.PhaseCoPilotWait:
		// The requester sits between posting and decode; the decode is
		// delayed by whatever else the Co-Pilot is servicing. The wait
		// phase is recorded on the Co-Pilot's own track.
		return "copilot/" + pe.Proc
	case trace.PhaseMailboxWait:
		// The stub blocks on the inbound mailbox until its own request
		// completes; other requests occupying its Co-Pilot push that out.
		if ownCopilot != "" {
			return "copilot/" + ownCopilot
		}
	case trace.PhaseMPIWait:
		// A reader blocked in MPI recv waits on the sender's NIC.
		if haveWireNode {
			return linkRes(wireNode)
		}
	case trace.PhaseMPISend, trace.PhaseRelay, trace.PhaseChunkRelay:
		// Wire injection queues behind other traffic on the same NIC.
		// Relay/chunk-relay on a Co-Pilot also queue there, but the loop's
		// own serialization is what the copilot/ resource models for its
		// *victims*; for the occupier itself the link is the contended
		// medium.
		if haveWireNode {
			return linkRes(wireNode)
		}
	}
	return ""
}
