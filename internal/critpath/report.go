package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"cellpilot/internal/sim"
)

// Table renders the human blame report: one per-channel-type table of the
// critical path's stage split (service vs queueing, share of the type's
// total), followed by the top victim/aggressor pairs. Output is
// deterministic: byte-identical across runs over identical spans.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d transfers, %s on the path, %s queueing (%.1f%%)\n",
		len(r.Transfers), r.CritTotal, r.QueueTotal, pctOf(r.QueueTotal, r.CritTotal))
	for _, tb := range r.Types {
		per := sim.Time(0)
		if tb.Transfers > 0 {
			per = tb.Total / sim.Time(tb.Transfers)
		}
		fmt.Fprintf(&b, "type%d: %d transfers, %s total (%s per transfer)\n",
			tb.ChanType, tb.Transfers, tb.Total, per)
		fmt.Fprintf(&b, "  %-16s %12s %12s %7s\n", "stage", "service", "queueing", "share")
		for _, sb := range tb.Stages {
			fmt.Fprintf(&b, "  %-16s %12s %12s %6.1f%%\n",
				StageName(sb.Phase), sb.Service, sb.Queue, pctOf(sb.Total(), tb.Total))
		}
	}
	if len(r.Pairs) > 0 {
		fmt.Fprintf(&b, "contended resources (top %d victim/aggressor pairs):\n", len(r.Pairs))
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "  %-20s xfer #%-5d blocked %10s behind xfer #%d\n",
				p.Resource, p.Victim, p.Blocked, p.Aggressor)
		}
	}
	return b.String()
}

// pctOf is part/total as a percentage, 0 when total is 0.
func pctOf(part, total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// FoldedStacks writes the report as folded critical-path stacks —
// "type<N>;<stage>;<service|queue> <nanoseconds>" — ready for any
// flamegraph tool. Stage order follows the blame tables.
func (r *Report) FoldedStacks(w io.Writer) error {
	for _, tb := range r.Types {
		for _, sb := range tb.Stages {
			if sb.Service > 0 {
				if _, err := fmt.Fprintf(w, "type%d;%s;service %d\n",
					tb.ChanType, StageName(sb.Phase), int64(sb.Service)); err != nil {
					return err
				}
			}
			if sb.Queue > 0 {
				if _, err := fmt.Fprintf(w, "type%d;%s;queue %d\n",
					tb.ChanType, StageName(sb.Phase), int64(sb.Queue)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// StageJSON is one stage's blame in the machine-readable report.
type StageJSON struct {
	Stage     string  `json:"stage"`
	ServiceUs float64 `json:"service_us"`
	QueueUs   float64 `json:"queue_us"`
	// Share is the stage's fraction of the type's summed critical path.
	Share float64 `json:"share"`
}

// TypeJSON is one channel type's blame in the machine-readable report.
type TypeJSON struct {
	Type      string `json:"type"`
	Transfers int    `json:"transfers"`
	// CritPathUs is the summed critical-path time; PerTransferUs the mean.
	CritPathUs    float64     `json:"critpath_us"`
	PerTransferUs float64     `json:"per_transfer_us"`
	Stages        []StageJSON `json:"stages"`
}

// PairJSON is one contention edge in the machine-readable report.
type PairJSON struct {
	Resource  string  `json:"resource"`
	Victim    int64   `json:"victim"`
	Aggressor int64   `json:"aggressor"`
	BlockedUs float64 `json:"blocked_us"`
}

// File is the BLAME_<exp>.json schema: the committed blame baseline the
// bench guard diffs regressions against.
type File struct {
	Experiment   string     `json:"experiment"`
	PayloadBytes int        `json:"payload_bytes,omitempty"`
	Reps         int        `json:"reps,omitempty"`
	Types        []TypeJSON `json:"channel_types"`
	Pairs        []PairJSON `json:"contended_pairs,omitempty"`
}

// ToFile shapes the report into the BLAME JSON schema.
func (r *Report) ToFile(experiment string, payloadBytes, reps int) *File {
	f := &File{Experiment: experiment, PayloadBytes: payloadBytes, Reps: reps}
	for _, tb := range r.Types {
		tj := TypeJSON{
			Type:       fmt.Sprintf("type%d", tb.ChanType),
			Transfers:  tb.Transfers,
			CritPathUs: round2(tb.Total.Micros()),
		}
		if tb.Transfers > 0 {
			tj.PerTransferUs = round2(tb.Total.Micros() / float64(tb.Transfers))
		}
		for _, sb := range tb.Stages {
			tj.Stages = append(tj.Stages, StageJSON{
				Stage:     StageName(sb.Phase),
				ServiceUs: round2(sb.Service.Micros()),
				QueueUs:   round2(sb.Queue.Micros()),
				Share:     round4(float64(sb.Total()) / float64(tb.Total)),
			})
		}
		f.Types = append(f.Types, tj)
	}
	for _, p := range r.Pairs {
		f.Pairs = append(f.Pairs, PairJSON{
			Resource: p.Resource, Victim: p.Victim, Aggressor: p.Aggressor,
			BlockedUs: round2(p.Blocked.Micros()),
		})
	}
	return f
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

// Write renders the file as indented JSON.
func (f *File) Write(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// LoadFile reads a BLAME JSON baseline from disk.
func LoadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("critpath: %s: %w", path, err)
	}
	return &f, nil
}

// TypeByName returns the named channel type's blame, if present.
func (f *File) TypeByName(name string) (TypeJSON, bool) {
	for _, tj := range f.Types {
		if tj.Type == name {
			return tj, true
		}
	}
	return TypeJSON{}, false
}

// StageDelta is one stage's movement between a baseline and a current
// blame decomposition, in mean microseconds per transfer.
type StageDelta struct {
	Stage string
	// BaseUs and NowUs are per-transfer stage times (service+queue).
	BaseUs, NowUs float64
	// DeltaUs is NowUs - BaseUs; positive means the stage got slower.
	DeltaUs float64
	// QueueDeltaUs is how much of the movement is queueing.
	QueueDeltaUs float64
}

// DiffType compares a channel type's blame between a baseline file entry
// and a freshly measured one, per transfer, sorted by |delta| descending
// (ties by stage name) — the first entry names the stage that moved most.
func DiffType(base, now TypeJSON) []StageDelta {
	perXfer := func(tj TypeJSON) (map[string][2]float64, []string) {
		m := map[string][2]float64{}
		var order []string
		if tj.Transfers == 0 {
			return m, order
		}
		n := float64(tj.Transfers)
		for _, st := range tj.Stages {
			m[st.Stage] = [2]float64{(st.ServiceUs + st.QueueUs) / n, st.QueueUs / n}
			order = append(order, st.Stage)
		}
		return m, order
	}
	bm, border := perXfer(base)
	nm, norder := perXfer(now)
	seen := map[string]bool{}
	var stages []string
	for _, s := range append(append([]string{}, border...), norder...) {
		if !seen[s] {
			seen[s] = true
			stages = append(stages, s)
		}
	}
	out := make([]StageDelta, 0, len(stages))
	for _, s := range stages {
		b, n := bm[s], nm[s]
		out = append(out, StageDelta{
			Stage:        s,
			BaseUs:       round2(b[0]),
			NowUs:        round2(n[0]),
			DeltaUs:      round2(n[0] - b[0]),
			QueueDeltaUs: round2(n[1] - b[1]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].DeltaUs), math.Abs(out[j].DeltaUs)
		if ai != aj {
			return ai > aj
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// FormatDiff renders a blame diff as the table the bench guard prints
// when its latency gate trips: every stage's per-transfer movement, the
// top mover first and called out on the last line.
func FormatDiff(typeName string, deltas []StageDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  blame diff for %s (per transfer):\n", typeName)
	fmt.Fprintf(&b, "    %-16s %10s %10s %10s %10s\n", "stage", "baseline", "now", "delta", "queue Δ")
	for _, d := range deltas {
		fmt.Fprintf(&b, "    %-16s %8.1fus %8.1fus %+8.1fus %+8.1fus\n",
			d.Stage, d.BaseUs, d.NowUs, d.DeltaUs, d.QueueDeltaUs)
	}
	if len(deltas) > 0 && deltas[0].DeltaUs > 0 {
		top := deltas[0]
		how := "service"
		if top.QueueDeltaUs > top.DeltaUs/2 {
			how = "queueing"
		}
		fmt.Fprintf(&b, "    blame: %s (+%.1fus per transfer, mostly %s)\n", top.Stage, top.DeltaUs, how)
	}
	return b.String()
}
