package critpath

import (
	"bytes"
	"testing"

	"cellpilot/internal/sim"
	"cellpilot/internal/trace"
)

const us = sim.Microsecond

// mkSpan assembles a span the way trace.Recorder.Spans does: bounds from
// the phases, id/type from the first.
func mkSpan(id int64, chanType int, phases ...trace.PhaseEvent) trace.Span {
	sp := trace.Span{ID: id, ChanType: chanType, Channel: int(id), Start: phases[0].Start, End: phases[0].End}
	for i := range phases {
		phases[i].Xfer = id
		phases[i].ChanType = chanType
		if phases[i].Start < sp.Start {
			sp.Start = phases[i].Start
		}
		if phases[i].End > sp.End {
			sp.End = phases[i].End
		}
	}
	sp.Phases = phases
	return sp
}

func pe(kind trace.PhaseKind, proc string, start, end sim.Time) trace.PhaseEvent {
	return trace.PhaseEvent{Phase: kind, Proc: proc, Start: start, End: end}
}

// C-CP1: every transfer's stage attributions partition [Start, End]
// exactly — zero error, stronger than the 1 ns acceptance bound.
func TestSweepPartitionsExactly(t *testing.T) {
	sp := mkSpan(1, 3,
		pe(trace.PhasePack, "spe", 0, 10*us),
		pe(trace.PhaseMailboxReq, "spe", 10*us, 20*us),
		pe(trace.PhaseMailboxWait, "spe", 20*us, 60*us),
		pe(trace.PhaseCoPilotWait, "copilot@n0", 20*us, 30*us),
		pe(trace.PhaseCoPilotService, "copilot@n0", 30*us, 40*us),
		pe(trace.PhaseRelay, "copilot@n0", 40*us, 48*us),
	)
	r := Analyze([]trace.Span{sp}, Options{})
	if len(r.Transfers) != 1 {
		t.Fatalf("transfers = %d", len(r.Transfers))
	}
	tr := r.Transfers[0]
	var sum sim.Time
	for _, sb := range tr.Stages {
		sum += sb.Total()
	}
	if sum != tr.Dur() {
		t.Fatalf("stage sum %v != end-to-end %v", sum, tr.Dur())
	}
	// Latest-start-wins attribution: the Co-Pilot's decode window owns
	// [20,30), service [30,40), relay [40,48), and the enclosing
	// mailbox-wait picks up only the tail the Co-Pilot left [48,60).
	want := map[trace.PhaseKind]sim.Time{
		trace.PhasePack:           10 * us,
		trace.PhaseMailboxReq:     10 * us,
		trace.PhaseCoPilotWait:    10 * us,
		trace.PhaseCoPilotService: 10 * us,
		trace.PhaseRelay:          8 * us,
		trace.PhaseMailboxWait:    12 * us,
	}
	for k, w := range want {
		if got := tr.StageTotal(k); got != w {
			t.Errorf("%s = %v, want %v", k, got, w)
		}
	}
}

// C-CP2: a gap no phase covers is attributed to the explicit wire-gap
// pseudo-stage, keeping the partition exact.
func TestGapAttribution(t *testing.T) {
	sp := mkSpan(2, 1,
		pe(trace.PhaseMPISend, "w", 0, 10*us),
		pe(trace.PhasePack, "r", 25*us, 30*us),
	)
	r := Analyze([]trace.Span{sp}, Options{})
	tr := r.Transfers[0]
	if got := tr.StageTotal(GapKind); got != 15*us {
		t.Fatalf("gap = %v, want 15us", got)
	}
	var sum sim.Time
	for _, sb := range tr.Stages {
		sum += sb.Total()
	}
	if sum != tr.Dur() {
		t.Fatalf("stage sum %v != %v", sum, tr.Dur())
	}
}

// C-CP3: a transfer waiting while its Co-Pilot services another transfer
// gets that time split out as queueing, blamed on the aggressor.
func TestQueueingBlame(t *testing.T) {
	aggressor := mkSpan(10, 3,
		pe(trace.PhaseCoPilotService, "copilot@n0", 30*us, 42*us),
	)
	victim := mkSpan(11, 3,
		pe(trace.PhaseMailboxReq, "spe1", 20*us, 25*us),
		pe(trace.PhaseCoPilotWait, "copilot@n0", 25*us, 45*us),
		pe(trace.PhaseCoPilotService, "copilot@n0", 45*us, 50*us),
	)
	r := Analyze([]trace.Span{aggressor, victim}, Options{})
	var vic Transfer
	for _, tr := range r.Transfers {
		if tr.ID == 11 {
			vic = tr
		}
	}
	var wait StageBlame
	for _, sb := range vic.Stages {
		if sb.Phase == trace.PhaseCoPilotWait {
			wait = sb
		}
	}
	// [25,45) overlaps the aggressor's service [30,42) for 12us.
	if wait.Queue != 12*us {
		t.Fatalf("queueing = %v, want 12us (stage %+v)", wait.Queue, wait)
	}
	if wait.Service != 8*us {
		t.Fatalf("service = %v, want 8us", wait.Service)
	}
	if len(r.Pairs) == 0 {
		t.Fatal("no contention pairs")
	}
	p := r.Pairs[0]
	if p.Victim != 11 || p.Aggressor != 10 || p.Blocked != 12*us || p.Resource != "copilot/copilot@n0" {
		t.Fatalf("pair = %+v", p)
	}
}

// C-CP4: mailbox-wait queueing resolves the span's own Co-Pilot and
// charges overlap with other transfers' service there.
func TestMailboxWaitQueuesOnOwnCopilot(t *testing.T) {
	other := mkSpan(20, 2,
		pe(trace.PhaseCoPilotService, "copilot@n0", 10*us, 30*us),
	)
	vic := mkSpan(21, 2,
		pe(trace.PhaseMailboxWait, "spe0", 0, 40*us),
		pe(trace.PhaseCoPilotService, "copilot@n0", 35*us, 38*us),
	)
	r := Analyze([]trace.Span{other, vic}, Options{})
	for _, tr := range r.Transfers {
		if tr.ID != 21 {
			continue
		}
		for _, sb := range tr.Stages {
			if sb.Phase == trace.PhaseMailboxWait {
				// mbox-wait wins [0,35) and [38,40); [10,30) is queueing.
				if sb.Queue != 20*us {
					t.Fatalf("mbox-wait queue = %v, want 20us", sb.Queue)
				}
				return
			}
		}
	}
	t.Fatal("victim transfer or stage missing")
}

// C-CP5: chunk DMA annotations define mfc-dma occupancy but never compete
// for critical-path attribution.
func TestChunkDMAOccupancyOnly(t *testing.T) {
	a := mkSpan(30, 5,
		pe(trace.PhaseChunkRelay, "copilot@n0", 0, 40*us),
	)
	a.Phases = append(a.Phases, trace.PhaseEvent{
		Xfer: 30, Phase: trace.PhaseChunkDMA, Proc: "spe0",
		Start: 0, End: 40 * us, Stream: 30, Chunk: 1, ChanType: 5,
	})
	b := mkSpan(31, 5,
		pe(trace.PhaseMailboxWait, "spe0", 0, 50*us),
		pe(trace.PhaseCoPilotService, "copilot@n0", 45*us, 48*us),
	)
	r := Analyze([]trace.Span{a, b}, Options{})
	for _, tr := range r.Transfers {
		if tr.ID == 30 {
			if got := tr.StageTotal(trace.PhaseChunkDMA); got != 0 {
				t.Fatalf("annotation won attribution: %v", got)
			}
			if got := tr.StageTotal(trace.PhaseChunkRelay); got != 40*us {
				t.Fatalf("chunk-relay = %v", got)
			}
		}
	}
}

// C-CP6: with a proc→node map, MPI waits split against the sender node's
// link occupancy.
func TestLinkQueueingWithProcNodes(t *testing.T) {
	nodes := map[string]int{"w0": 0, "w1": 0, "r0": 1, "r1": 1}
	a := mkSpan(40, 1,
		pe(trace.PhaseMPISend, "w0", 0, 30*us),
	)
	b := mkSpan(41, 1,
		pe(trace.PhaseMPISend, "w1", 10*us, 20*us),
		pe(trace.PhaseMPIWait, "r1", 0, 50*us),
	)
	r := Analyze([]trace.Span{a, b}, Options{ProcNodes: nodes})
	for _, tr := range r.Transfers {
		if tr.ID != 41 {
			continue
		}
		for _, sb := range tr.Stages {
			if sb.Phase == trace.PhaseMPIWait {
				// mpi-wait wins [0,10) and [20,50); a's send occupies the
				// node-0 link [0,30), so [0,10)+[20,30) = 20us queueing.
				if sb.Queue != 20*us {
					t.Fatalf("mpi-wait queue = %v, want 20us", sb.Queue)
				}
			}
		}
	}
}

// C-CP7: the report is byte-identical across repeated analyses — the
// determinism the blame baseline depends on.
func TestReportDeterministic(t *testing.T) {
	spans := []trace.Span{
		mkSpan(1, 3,
			pe(trace.PhaseMailboxReq, "spe0", 0, 5*us),
			pe(trace.PhaseCoPilotWait, "copilot@n0", 5*us, 12*us),
			pe(trace.PhaseCoPilotService, "copilot@n0", 12*us, 20*us),
		),
		mkSpan(2, 3,
			pe(trace.PhaseMailboxReq, "spe1", 1*us, 6*us),
			pe(trace.PhaseCoPilotWait, "copilot@n0", 6*us, 25*us),
			pe(trace.PhaseCoPilotService, "copilot@n0", 25*us, 30*us),
		),
	}
	render := func() (string, string, string) {
		r := Analyze(spans, Options{})
		var folded, blame bytes.Buffer
		if err := r.FoldedStacks(&folded); err != nil {
			t.Fatal(err)
		}
		if err := r.ToFile("test", 0, 0).Write(&blame); err != nil {
			t.Fatal(err)
		}
		return r.Table(), folded.String(), blame.String()
	}
	t1, f1, b1 := render()
	t2, f2, b2 := render()
	if t1 != t2 || f1 != f2 || b1 != b2 {
		t.Fatal("report not byte-identical across analyses")
	}
	if t1 == "" || f1 == "" || b1 == "" {
		t.Fatal("empty report")
	}
}

// C-CP8: DiffType ranks the stage that moved most first and FormatDiff
// names it.
func TestDiffNamesSlowedStage(t *testing.T) {
	base := TypeJSON{Type: "type3", Transfers: 10, Stages: []StageJSON{
		{Stage: "copilot-wait", ServiceUs: 100, QueueUs: 0},
		{Stage: "relay", ServiceUs: 200, QueueUs: 0},
	}}
	now := TypeJSON{Type: "type3", Transfers: 10, Stages: []StageJSON{
		{Stage: "copilot-wait", ServiceUs: 100, QueueUs: 250},
		{Stage: "relay", ServiceUs: 210, QueueUs: 0},
	}}
	deltas := DiffType(base, now)
	if deltas[0].Stage != "copilot-wait" || deltas[0].DeltaUs != 25 {
		t.Fatalf("top delta = %+v", deltas[0])
	}
	out := FormatDiff("type3", deltas)
	if !bytes.Contains([]byte(out), []byte("blame: copilot-wait")) ||
		!bytes.Contains([]byte(out), []byte("queueing")) {
		t.Fatalf("diff did not name the slowed stage:\n%s", out)
	}
}
