// Package timeline records virtual-time-bucketed telemetry series for one
// simulation run. A Recorder is attached to the kernel's clock hook; every
// time the virtual clock crosses a window boundary it invokes a sampler
// callback that reads live runtime state (Co-Pilot busy time, link
// saturation, channel backlog, fault counters, ...) and appends one value
// per series per window. The result is a deterministic time series — same
// seed, same windows, byte for byte — plus derived analytics: peak, mean,
// p95, burst runs, and per-fault recovery time.
//
// The recorder follows the repo's zero-virtual-cost contract: it only ever
// observes. It never schedules events, so attaching one cannot perturb the
// virtual timeline or the chaos determinism fingerprints.
//
// Windowing model: window w spans virtual time [w·W, (w+1)·W). The clock
// hook fires after the clock advances to an event's timestamp but before
// the event dispatches, so a window is closed (sampled) the first time the
// clock reaches or passes its right edge — i.e. with exactly the state
// produced by every event strictly inside the window. When the clock jumps
// several windows at once the intermediate windows close against unchanged
// state: gauges repeat, counter and busy deltas are zero. Cumulative
// quantities (counters, busy time) are attributed to the window in which
// the accruing event fires, which matches the end-of-run aggregates.
package timeline

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cellpilot/internal/sim"
)

// Kind classifies how a sampled raw value becomes a per-window value.
type Kind int

const (
	// Gauge is an instantaneous value: the window holds the reading at
	// window close (e.g. backlog depth, mailbox high-water).
	Gauge Kind = iota
	// Counter is a cumulative count: the window holds the delta since the
	// previous window (e.g. bytes moved, faults injected).
	Counter
	// Busy is cumulative busy time in virtual nanoseconds: the window
	// holds delta ÷ window width — a utilization ratio. Busy time lands
	// in the window whose events accrued it, so a long service slice
	// completing in one window can push that window's ratio above 1;
	// SetClamp caps such windows at 1 (the excess is dropped, not
	// carried over).
	Busy
)

func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Counter:
		return "counter"
	case Busy:
		return "busy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefaultWindow is the bucket width used when New is given zero: wide
// enough that a millisecond-scale chaos run stays in the hundreds of
// windows, fine enough to see a fault's backlog spike build and drain.
const DefaultWindow = 100 * sim.Microsecond

// MaxWindows caps the recording; a run that outlives the cap keeps its
// prefix and sets Truncated rather than growing without bound.
const MaxWindows = 1 << 16

// recoveryTolerance is the fraction above the pre-fault baseline a series
// may sit and still count as recovered.
const recoveryTolerance = 0.25

// Sample collects one window's readings. The sampler calls Add once per
// series; series it skips this window record zero.
type Sample struct {
	names []string
	kinds []Kind
	raws  []float64
}

// Add records one raw reading. For Counter and Busy the raw value is the
// cumulative total; the recorder differentiates it into window deltas.
func (s *Sample) Add(name string, kind Kind, raw float64) {
	s.names = append(s.names, name)
	s.kinds = append(s.kinds, kind)
	s.raws = append(s.raws, raw)
}

func (s *Sample) reset() {
	s.names = s.names[:0]
	s.kinds = s.kinds[:0]
	s.raws = s.raws[:0]
}

// FaultMark is one injected fault noted on the timeline.
type FaultMark struct {
	At    sim.Time
	Label string
}

type series struct {
	name string
	kind Kind
	last float64 // previous cumulative raw (Counter/Busy differentiation)
	gen  int     // last window generation this series was sampled in
	vals []float64
}

// Recorder accumulates windowed series. The zero value is not usable; use
// New. All methods are single-goroutine, matching the kernel's event loop.
type Recorder struct {
	window    sim.Time
	sampler   func(*Sample)
	series    map[string]*series
	names     []string // sorted; the deterministic iteration order
	closed    int      // windows closed so far
	gen       int      // window generation counter
	end       sim.Time // final clock reading, set by Finish
	finished  bool
	truncated bool
	clamp     bool
	faults    []FaultMark
	scratch   Sample
}

// New builds a recorder with the given window width; width <= 0 selects
// DefaultWindow.
func New(window sim.Time) *Recorder {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Recorder{window: window, series: map[string]*series{}}
}

// SetSampler installs the callback that reads live runtime state into a
// Sample at every window close. The runtime installs this when the
// recorder is attached; replacing it mid-run starts differentiating
// cumulative kinds from each series' last seen raw value.
func (r *Recorder) SetSampler(fn func(*Sample)) { r.sampler = fn }

// SetClamp caps Busy series at a 1.0 utilization ratio per window.
// Lumpy completions — a service slice longer than the window width
// accruing in the window where it completes — can legitimately push a
// Busy window above 1; clamping trades that fidelity for a
// plot-friendly [0, 1] range. Off by default. Affects only windows
// closed after the call, so set it before the run starts; Gauge and
// Counter series are never clamped.
func (r *Recorder) SetClamp(on bool) { r.clamp = on }

// Observe is the kernel clock hook: it closes every window whose right
// edge the clock has reached. Nil-receiver safe so callers can hold an
// optional recorder without guarding.
func (r *Recorder) Observe(now sim.Time) {
	if r == nil || r.finished || r.truncated {
		return
	}
	for sim.Time(r.closed+1)*r.window <= now {
		if r.closed >= MaxWindows {
			r.truncated = true
			return
		}
		r.closeWindow(r.window)
	}
}

// Finish closes the trailing partial window at the run's final clock
// reading and freezes the recorder. Idempotent.
func (r *Recorder) Finish(now sim.Time) {
	if r == nil || r.finished {
		return
	}
	r.Observe(now)
	start := sim.Time(r.closed) * r.window
	if !r.truncated && now > start && r.closed < MaxWindows {
		r.closeWindow(now - start)
	}
	r.end = now
	r.finished = true
}

// NoteFault marks an injected fault on the timeline; recovery analytics
// measure from these marks. Nil-receiver safe.
func (r *Recorder) NoteFault(at sim.Time, label string) {
	if r == nil {
		return
	}
	r.faults = append(r.faults, FaultMark{At: at, Label: label})
}

// closeWindow samples once and appends one value to every series.
func (r *Recorder) closeWindow(width sim.Time) {
	r.gen++
	r.scratch.reset()
	if r.sampler != nil {
		r.sampler(&r.scratch)
	}
	for i, name := range r.scratch.names {
		s := r.series[name]
		if s == nil {
			s = &series{name: name, kind: r.scratch.kinds[i]}
			// Series appearing mid-run backfill zero for every window
			// closed before their first sample.
			s.vals = make([]float64, r.closed, r.closed+1)
			r.series[name] = s
			at := sort.SearchStrings(r.names, name)
			r.names = append(r.names, "")
			copy(r.names[at+1:], r.names[at:])
			r.names[at] = name
		}
		if s.gen == r.gen {
			continue // duplicate Add in one sample: first wins
		}
		s.gen = r.gen
		raw := r.scratch.raws[i]
		var v float64
		switch s.kind {
		case Counter:
			v = raw - s.last
			s.last = raw
		case Busy:
			v = (raw - s.last) / float64(width)
			s.last = raw
			if r.clamp && v > 1 {
				v = 1
			}
		default:
			v = raw
		}
		s.vals = append(s.vals, v)
	}
	// Series the sampler skipped this window record zero.
	for _, name := range r.names {
		if s := r.series[name]; s.gen != r.gen {
			s.gen = r.gen
			s.vals = append(s.vals, 0)
		}
	}
	r.closed++
}

// Window returns the bucket width.
func (r *Recorder) Window() sim.Time { return r.window }

// Windows returns the number of closed windows (including the final
// partial one after Finish).
func (r *Recorder) Windows() int { return r.closed }

// End returns the final clock reading captured by Finish.
func (r *Recorder) End() sim.Time { return r.end }

// Truncated reports whether the run outlived MaxWindows.
func (r *Recorder) Truncated() bool { return r.truncated }

// Faults returns the noted fault marks in injection order.
func (r *Recorder) Faults() []FaultMark { return r.faults }

// SeriesNames returns the recorded series names, sorted.
func (r *Recorder) SeriesNames() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// windowStart and windowEnd bound window w in virtual time. Only the last
// window can be partial, ending at the Finish clock reading.
func (r *Recorder) windowStart(w int) sim.Time { return sim.Time(w) * r.window }

func (r *Recorder) windowEnd(w int) sim.Time {
	e := sim.Time(w+1) * r.window
	if r.finished && w == r.closed-1 && r.end > r.windowStart(w) && r.end < e {
		return r.end
	}
	return e
}

// Range returns the window values of one series over virtual time
// [from, to); to <= 0 means the end of the run. The second result is
// false when the series does not exist.
func (r *Recorder) Range(name string, from, to sim.Time) ([]float64, bool) {
	s := r.series[name]
	if s == nil {
		return nil, false
	}
	lo := 0
	if from > 0 {
		lo = int(from / r.window)
	}
	hi := len(s.vals)
	if to > 0 {
		h := int((to + r.window - 1) / r.window)
		if h < hi {
			hi = h
		}
	}
	if lo >= hi {
		return nil, true
	}
	return s.vals[lo:hi], true
}

// Recovery measures how long one series took to settle after a fault at
// the given time: the baseline is the series' mean over the windows fully
// before the fault; the series is disturbed when it exceeds baseline plus
// 25%, and recovered at the end of the first subsequent window back at or
// below that threshold. A fault that never disturbs the series recovers
// in zero time; a disturbance that never settles returns false.
func (r *Recorder) Recovery(name string, at sim.Time) (sim.Time, bool) {
	s := r.series[name]
	if s == nil || len(s.vals) == 0 {
		return 0, false
	}
	fw := int(at / r.window)
	if fw < 0 {
		fw = 0
	}
	if fw >= len(s.vals) {
		return 0, false
	}
	base := 0.0
	if fw > 0 {
		base = mean(s.vals[:fw])
	}
	thresh := base + math.Max(recoveryTolerance*base, 1e-9)
	disturbed := false
	for w := fw; w < len(s.vals); w++ {
		switch {
		case !disturbed && s.vals[w] > thresh:
			disturbed = true
		case disturbed && s.vals[w] <= thresh:
			d := r.windowEnd(w) - at
			if d < 0 {
				d = 0
			}
			return d, true
		}
	}
	if !disturbed {
		return 0, true
	}
	return 0, false
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// burstFactor: a window is bursting when its value is at least this
// multiple of the series mean (and positive).
const burstFactor = 2.0

// SeriesStats is one series' derived analytics plus its raw windows.
type SeriesStats struct {
	Name         string    `json:"name"`
	Kind         string    `json:"kind"`
	Peak         float64   `json:"peak"`
	PeakAt       sim.Time  `json:"peak_at_ns"` // start of the peak window
	Mean         float64   `json:"mean"`
	P95          float64   `json:"p95"`
	Bursts       int       `json:"bursts"`
	LongestBurst int       `json:"longest_burst"` // windows
	Values       []float64 `json:"values"`
}

// FaultRecovery is one fault mark with its recovery measurement against
// the report's recovery series.
type FaultRecovery struct {
	At        sim.Time `json:"at_ns"`
	Label     string   `json:"label"`
	Series    string   `json:"series"`
	Recovered bool     `json:"recovered"`
	Recovery  sim.Time `json:"recovery_ns"`
}

// Report is the exported timeline: windowing parameters, per-series
// analytics, and per-fault recovery. Field order is the JSON order, so
// marshalling is deterministic.
type Report struct {
	Window    sim.Time        `json:"window_ns"`
	Windows   int             `json:"windows"`
	End       sim.Time        `json:"end_ns"`
	Truncated bool            `json:"truncated,omitempty"`
	Series    []SeriesStats   `json:"series"`
	Faults    []FaultRecovery `json:"faults,omitempty"`
}

// DefaultRecoverySeries is the series Report measures fault recovery
// against when present.
const DefaultRecoverySeries = "backlog/total"

// Report derives the analytics. Call after Finish.
func (r *Recorder) Report() *Report {
	rep := &Report{Window: r.window, Windows: r.closed, End: r.end, Truncated: r.truncated}
	for _, name := range r.names {
		rep.Series = append(rep.Series, r.seriesStats(r.series[name]))
	}
	recSeries := DefaultRecoverySeries
	if r.series[recSeries] == nil {
		recSeries = ""
	}
	for _, f := range r.faults {
		fr := FaultRecovery{At: f.At, Label: f.Label, Series: recSeries}
		if recSeries != "" {
			fr.Recovery, fr.Recovered = r.Recovery(recSeries, f.At)
		}
		rep.Faults = append(rep.Faults, fr)
	}
	return rep
}

func (r *Recorder) seriesStats(s *series) SeriesStats {
	st := SeriesStats{Name: s.name, Kind: s.kind.String()}
	st.Values = append([]float64(nil), s.vals...)
	if len(s.vals) == 0 {
		return st
	}
	peakW := 0
	for w, v := range s.vals {
		if v > s.vals[peakW] {
			peakW = w
		}
	}
	st.Peak = s.vals[peakW]
	st.PeakAt = r.windowStart(peakW)
	st.Mean = mean(s.vals)
	st.P95 = p95(s.vals)
	st.Bursts, st.LongestBurst = bursts(s.vals, st.Mean)
	return st
}

func p95(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// bursts counts maximal runs of consecutive windows at or above
// burstFactor times the mean (and positive), and the longest such run.
func bursts(vals []float64, mean float64) (count, longest int) {
	thresh := burstFactor * mean
	run := 0
	for _, v := range vals {
		if v > 0 && v >= thresh && thresh > 0 {
			run++
			if run == 1 {
				count++
			}
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return count, longest
}

// Point is one chrome-trace counter sample: a series' window value
// stamped at the window's end.
type Point struct {
	At     sim.Time
	Series string
	Value  float64
}

// Points flattens the timeline for the Chrome-trace counter-event
// exporter, sorted by (time, series).
func (r *Recorder) Points() []Point {
	var out []Point
	for w := 0; w < r.closed; w++ {
		at := r.windowEnd(w)
		for _, name := range r.names {
			out = append(out, Point{At: at, Series: name, Value: r.series[name].vals[w]})
		}
	}
	return out
}

// fnum renders a float deterministically for fingerprints and tables.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Fingerprint renders the timeline into the canonical byte form used by
// determinism checks: windowing header, one analytics line per series
// (with a hash binding every window value), one line per fault mark.
func (r *Recorder) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline window_ns=%d windows=%d end_ns=%d truncated=%t\n",
		r.window, r.closed, r.end, r.truncated)
	for _, name := range r.names {
		s := r.series[name]
		st := r.seriesStats(s)
		fmt.Fprintf(&b, "series %s kind=%s peak=%s peak_at_ns=%d mean=%s p95=%s bursts=%d vals=%016x\n",
			name, s.kind, fnum(st.Peak), st.PeakAt, fnum(st.Mean), fnum(st.P95), st.Bursts, valsHash(s.vals))
	}
	for _, f := range r.faults {
		fmt.Fprintf(&b, "fault at_ns=%d label=%q\n", f.At, f.Label)
	}
	return b.String()
}

// valsHash is FNV-1a over the IEEE-754 bits of every window value: two
// timelines fingerprint equal only when every window matches bit for bit.
func valsHash(vals []float64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range vals {
		bits := math.Float64bits(v)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (bits >> shift) & 0xff
			h *= prime
		}
	}
	return h
}

// MarshalJSON exports the derived Report.
func (r *Recorder) MarshalJSON() ([]byte, error) { return json.Marshal(r.Report()) }
