package timeline

import (
	"encoding/json"
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

// fakeState drives a recorder by hand: the sampler reads these fields.
type fakeState struct {
	backlog float64 // gauge
	bytes   float64 // cumulative counter
	busy    float64 // cumulative busy ns
}

func (f *fakeState) sample(s *Sample) {
	s.Add("backlog/total", Gauge, f.backlog)
	s.Add("net/bytes", Counter, f.bytes)
	s.Add("copilot/x/utilization", Busy, f.busy)
}

func TestWindowingAndKinds(t *testing.T) {
	f := &fakeState{}
	r := New(100)
	r.SetSampler(f.sample)

	// Window 0: backlog 3, 500 bytes, 50ns busy.
	f.backlog, f.bytes, f.busy = 3, 500, 50
	r.Observe(100) // closes window 0
	// Window 1: backlog drops to 1, 300 more bytes, fully busy.
	f.backlog, f.bytes, f.busy = 1, 800, 150
	r.Observe(250) // closes window 1 (clock inside window 2)
	// Nothing happens until t=730: windows 2..6 close against frozen state.
	r.Observe(730)
	// The final partial window [700, 730) samples the state at Finish.
	f.backlog = 4
	r.Finish(730)

	if got := r.Windows(); got != 8 {
		t.Fatalf("Windows() = %d, want 8", got)
	}
	if r.End() != 730 {
		t.Fatalf("End() = %d, want 730", r.End())
	}

	wantBacklog := []float64{3, 1, 1, 1, 1, 1, 1, 4}
	wantBytes := []float64{500, 300, 0, 0, 0, 0, 0, 0}
	wantBusy := []float64{0.5, 1, 0, 0, 0, 0, 0, 0}
	checkVals(t, r, "backlog/total", wantBacklog)
	checkVals(t, r, "net/bytes", wantBytes)
	checkVals(t, r, "copilot/x/utilization", wantBusy)
}

func checkVals(t *testing.T, r *Recorder, name string, want []float64) {
	t.Helper()
	got, ok := r.Range(name, 0, 0)
	if !ok {
		t.Fatalf("series %q missing", name)
	}
	if len(got) != len(want) {
		t.Fatalf("series %q: %d windows, want %d (%v)", name, len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("series %q window %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestLateSeriesZeroBackfill(t *testing.T) {
	n := 0
	r := New(10)
	r.SetSampler(func(s *Sample) {
		s.Add("always", Gauge, 1)
		if n >= 2 {
			s.Add("late", Gauge, 7)
		}
		n++
	})
	r.Observe(10)
	r.Observe(20)
	r.Observe(30)
	r.Finish(30)
	checkVals(t, r, "late", []float64{0, 0, 7})
	checkVals(t, r, "always", []float64{1, 1, 1})
}

func TestRangeBounds(t *testing.T) {
	f := &fakeState{}
	r := New(100)
	r.SetSampler(f.sample)
	for i := 1; i <= 5; i++ {
		f.backlog = float64(i)
		r.Observe(sim.Time(i) * 100)
	}
	r.Finish(500)
	got, ok := r.Range("backlog/total", 100, 300)
	if !ok || len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Range[100,300) = %v ok=%v, want [2 3]", got, ok)
	}
	if _, ok := r.Range("no/such", 0, 0); ok {
		t.Fatal("Range on unknown series reported ok")
	}
}

func TestRecovery(t *testing.T) {
	vals := []float64{2, 2, 2, 2, 9, 9, 5, 2, 2, 2}
	r := replay(t, vals, 100)
	// Fault at t=390 (window 3). Baseline = mean(2,2,2) = 2, threshold 2.5.
	// Disturbed in window 4, back under threshold in window 7 → recovery
	// ends at t=800, i.e. 410 after the fault.
	d, ok := r.Recovery("s", 390)
	if !ok || d != 410 {
		t.Fatalf("Recovery = %v ok=%v, want 410 true", d, ok)
	}
	// A fault that never disturbs the series recovers immediately.
	quiet := replay(t, []float64{2, 2, 2, 2, 2}, 100)
	if d, ok := quiet.Recovery("s", 150); !ok || d != 0 {
		t.Fatalf("quiet Recovery = %v ok=%v, want 0 true", d, ok)
	}
	// A disturbance that never settles does not recover.
	stuck := replay(t, []float64{1, 1, 8, 8, 8}, 100)
	if _, ok := stuck.Recovery("s", 150); ok {
		t.Fatal("stuck series reported recovered")
	}
	// Beyond the recording: unknown.
	if _, ok := r.Recovery("s", 5_000_000); ok {
		t.Fatal("fault beyond recording reported recovered")
	}
}

// replay builds a recorder whose series "s" holds exactly vals, one per
// window of the given width.
func replay(t *testing.T, vals []float64, window sim.Time) *Recorder {
	t.Helper()
	i := 0
	r := New(window)
	r.SetSampler(func(s *Sample) {
		s.Add("s", Gauge, vals[i])
		i++
	})
	for w := range vals {
		r.Observe(sim.Time(w+1) * window)
	}
	r.Finish(sim.Time(len(vals)) * window)
	return r
}

func TestReportAnalytics(t *testing.T) {
	r := replay(t, []float64{1, 1, 9, 9, 1, 1, 8, 1}, 100)
	r.NoteFault(150, "kill-spe(c2e#0)")
	rep := r.Report()
	if len(rep.Series) != 1 {
		t.Fatalf("series count = %d", len(rep.Series))
	}
	s := rep.Series[0]
	if s.Peak != 9 || s.PeakAt != 200 {
		t.Errorf("peak = %v at %d, want 9 at 200", s.Peak, s.PeakAt)
	}
	if s.Mean != 3.875 {
		t.Errorf("mean = %v, want 3.875", s.Mean)
	}
	if s.Bursts != 2 || s.LongestBurst != 2 {
		t.Errorf("bursts = %d longest %d, want 2/2", s.Bursts, s.LongestBurst)
	}
	if len(rep.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(rep.Faults))
	}
	// No backlog/total series here, so no recovery series is bound.
	if rep.Faults[0].Series != "" {
		t.Errorf("recovery series = %q, want empty", rep.Faults[0].Series)
	}
}

func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	build := func(spike float64) string {
		r := replay(t, []float64{1, 2, spike, 2}, 50)
		r.NoteFault(120, "crash-node(node1)")
		return r.Fingerprint()
	}
	a, b := build(7), build(7)
	if a != b {
		t.Fatalf("same inputs, different fingerprints:\n%s\nvs\n%s", a, b)
	}
	if c := build(8); c == a {
		t.Fatal("different window values, identical fingerprint")
	}
	for _, want := range []string{"timeline window_ns=50", "series s kind=gauge", "fault at_ns=120"} {
		if !strings.Contains(a, want) {
			t.Errorf("fingerprint missing %q:\n%s", want, a)
		}
	}
}

func TestTruncation(t *testing.T) {
	r := New(1)
	r.SetSampler(func(s *Sample) { s.Add("s", Gauge, 1) })
	r.Observe(sim.Time(MaxWindows) + 100)
	r.Finish(sim.Time(MaxWindows) + 100)
	if !r.Truncated() {
		t.Fatal("recorder not truncated")
	}
	if r.Windows() != MaxWindows {
		t.Fatalf("Windows() = %d, want %d", r.Windows(), MaxWindows)
	}
}

func TestPointsSortedAndStamped(t *testing.T) {
	r := New(10)
	r.SetSampler(func(s *Sample) {
		s.Add("b", Gauge, 2)
		s.Add("a", Gauge, 1)
	})
	r.Observe(10)
	r.Observe(20)
	r.Finish(25)
	pts := r.Points()
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	if pts[0].Series != "a" || pts[0].At != 10 || pts[1].Series != "b" {
		t.Errorf("first window points out of order: %+v", pts[:2])
	}
	if last := pts[len(pts)-1]; last.At != 25 {
		t.Errorf("final partial window stamped at %d, want 25", last.At)
	}
}

func TestSparkline(t *testing.T) {
	if got := Spark([]float64{0, 1, 2, 4}, 4); got != "·▂▄█" {
		t.Errorf("Spark = %q, want ·▂▄█", got)
	}
	// Downsampling keeps spikes: max per bucket.
	if got := Spark([]float64{0, 0, 9, 0, 0, 0, 0, 0}, 4); got != "·█··" {
		t.Errorf("Spark downsample = %q, want ·█··", got)
	}
	if Spark(nil, 10) != "" {
		t.Error("Spark(nil) not empty")
	}
}

func TestReportStringAndJSON(t *testing.T) {
	r := replay(t, []float64{1, 5, 1}, 100)
	r.NoteFault(50, "kill-copilot(node0/cell1)")
	rep := r.Report()
	out := rep.String()
	for _, want := range []string{"3 windows", "series", "peak", "kill-copilot"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["windows"].(float64) != 3 {
		t.Errorf("json windows = %v", decoded["windows"])
	}
	again, _ := json.Marshal(r)
	if string(again) != string(data) {
		t.Error("MarshalJSON not deterministic")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Observe(100)
	r.Finish(100)
	r.NoteFault(1, "x")
}

// SetClamp caps Busy windows at a 1.0 utilization ratio; off (the
// default) an overlapping-span series can exceed 1, preserving goldens.
func TestBusyClamp(t *testing.T) {
	run := func(clamp bool) *Recorder {
		busy := 0.0
		r := New(100)
		r.SetClamp(clamp)
		r.SetSampler(func(s *Sample) {
			s.Add("copilot/x/utilization", Busy, busy)
			s.Add("net/bytes", Counter, busy) // counters are never clamped
		})
		busy = 150 // 150ns of busy in a 100ns window: ratio 1.5
		r.Observe(100)
		busy = 200 // 50ns more: ratio 0.5
		r.Finish(200)
		return r
	}

	checkVals(t, run(false), "copilot/x/utilization", []float64{1.5, 0.5})
	clamped := run(true)
	checkVals(t, clamped, "copilot/x/utilization", []float64{1, 0.5})
	// Counter series pass through untouched under clamping.
	checkVals(t, clamped, "net/bytes", []float64{150, 50})
}

// Clamping only affects windows closed after the call, so it can be
// toggled mid-run without rewriting history.
func TestClampAffectsOnlyLaterWindows(t *testing.T) {
	busy := 0.0
	r := New(100)
	r.SetSampler(func(s *Sample) { s.Add("b", Busy, busy) })
	busy = 150
	r.Observe(100) // window 0 closes unclamped: 1.5
	r.SetClamp(true)
	busy = 350
	r.Finish(200) // window 1 closes clamped: 2.0 -> 1
	checkVals(t, r, "b", []float64{1.5, 1})
}
