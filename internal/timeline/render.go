package timeline

import (
	"fmt"
	"strings"
)

// sparkLevels are the eight block glyphs; zero windows render as '·' so a
// quiet series reads as a dotted line rather than a solid floor.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders the values into a fixed-width sparkline scaled to their
// peak. Wider inputs downsample by taking the max of each bucket, so
// short spikes survive compression.
func Spark(vals []float64, width int) string {
	if width <= 0 || len(vals) == 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	peak := 0.0
	for _, v := range vals {
		if v > peak {
			peak = v
		}
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
		if hi <= lo {
			hi = lo + 1
		}
		bucket := 0.0
		for _, v := range vals[lo:hi] {
			if v > bucket {
				bucket = v
			}
		}
		if peak <= 0 || bucket <= 0 {
			b.WriteRune('·')
			continue
		}
		lvl := int(bucket / peak * float64(len(sparkLevels)-1))
		if lvl >= len(sparkLevels) {
			lvl = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// String renders the report as the cellpilot-trace -timeline table:
// windowing header, one sparkline row per series with peak/mean/p95/burst
// columns, and the fault table with the recovery column.
func (rep *Report) String() string {
	const sparkWidth = 48
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d windows × %s (end %s)", rep.Windows, rep.Window, rep.End)
	if rep.Truncated {
		b.WriteString("  [truncated]")
	}
	b.WriteByte('\n')
	if len(rep.Series) == 0 {
		b.WriteString("  (no series recorded)\n")
		return b.String()
	}
	nameW := len("series")
	for _, s := range rep.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %10s %10s %10s  %s\n",
		nameW, "series", sparkWidth, "windows", "peak", "mean", "p95", "bursts")
	for _, s := range rep.Series {
		fmt.Fprintf(&b, "  %-*s  %-*s  %10s %10s %10s  %d\n",
			nameW, s.Name, sparkWidth, Spark(s.Values, sparkWidth),
			fnum(s.Peak), fnum(s.Mean), fnum(s.P95), s.Bursts)
	}
	if len(rep.Faults) > 0 {
		fmt.Fprintf(&b, "  faults (recovery vs %s):\n", rep.Faults[0].Series)
		for _, f := range rep.Faults {
			rec := "never recovered"
			if f.Recovered {
				rec = fmt.Sprintf("recovered in %s", f.Recovery)
			}
			if f.Series == "" {
				rec = "no recovery series"
			}
			fmt.Fprintf(&b, "    %-12s %-28s %s\n", f.At.String(), f.Label, rec)
		}
	}
	return b.String()
}
