// Package cluster assembles simulated hybrid clusters: Cell BE blades plus
// conventional x86 nodes on a gigabit interconnect, matching the paper's
// testbed (8 dual-PowerXCell 8i blades + 4 Xeon nodes).
package cluster

import (
	"fmt"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/interconnect"
	"cellpilot/internal/sim"
)

// Spec describes a cluster to build.
type Spec struct {
	// CellNodes is the number of Cell blades.
	CellNodes int
	// CellsPerNode is Cell processors per blade (paper: 2 = dual
	// PowerXCell 8i, 16 SPEs per blade).
	CellsPerNode int
	// XeonNodes is the number of conventional nodes.
	XeonNodes int
	// XeonCores is cores per conventional node.
	XeonCores int
	// MemPerNode is main memory bytes per node (default 64 MB — plenty for
	// simulated message buffers).
	MemPerNode int
	// Params overrides the timing calibration (nil = DefaultParams).
	Params *cellbe.Params
	// Seed feeds the simulation kernel's deterministic RNG.
	Seed int64
}

// PaperSpec is the testbed of the paper's Section V: 8 dual-PowerXCell
// blades and 4 Xeon nodes on gigabit Ethernet.
func PaperSpec() Spec {
	return Spec{CellNodes: 8, CellsPerNode: 2, XeonNodes: 4, XeonCores: 8, Seed: 1}
}

func (s Spec) withDefaults() Spec {
	if s.CellsPerNode == 0 {
		s.CellsPerNode = 2
	}
	if s.XeonCores == 0 {
		s.XeonCores = 4
	}
	if s.MemPerNode == 0 {
		s.MemPerNode = 64 << 20
	}
	if s.Params == nil {
		s.Params = cellbe.DefaultParams()
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Cluster is a built machine: the simulation kernel, all nodes (Cell
// blades first, then x86), and the interconnect.
type Cluster struct {
	K      *sim.Kernel
	Spec   Spec
	Params *cellbe.Params
	Nodes  []*cellbe.Node
	Net    *interconnect.Network
}

// New builds a cluster from spec.
func New(spec Spec) (*Cluster, error) {
	spec = spec.withDefaults()
	if spec.CellNodes < 0 || spec.XeonNodes < 0 || spec.CellNodes+spec.XeonNodes == 0 {
		return nil, fmt.Errorf("cluster: need at least one node (spec %+v)", spec)
	}
	k := sim.NewKernel(spec.Seed)
	c := &Cluster{K: k, Spec: spec, Params: spec.Params}
	id := 0
	for i := 0; i < spec.CellNodes; i++ {
		c.Nodes = append(c.Nodes, cellbe.NewCellNode(
			k, id, fmt.Sprintf("cell%d", i), spec.CellsPerNode, spec.Params, spec.MemPerNode))
		id++
	}
	for i := 0; i < spec.XeonNodes; i++ {
		c.Nodes = append(c.Nodes, cellbe.NewX86Node(
			id, fmt.Sprintf("xeon%d", i), spec.XeonCores, spec.Params, spec.MemPerNode))
		id++
	}
	c.Net = interconnect.New(k, spec.Params, len(c.Nodes))
	return c, nil
}

// CellNodesList returns just the Cell blades.
func (c *Cluster) CellNodesList() []*cellbe.Node {
	var out []*cellbe.Node
	for _, n := range c.Nodes {
		if n.Arch == cellbe.ArchCell {
			out = append(out, n)
		}
	}
	return out
}

// XeonNodesList returns just the conventional nodes.
func (c *Cluster) XeonNodesList() []*cellbe.Node {
	var out []*cellbe.Node
	for _, n := range c.Nodes {
		if n.Arch == cellbe.ArchX86 {
			out = append(out, n)
		}
	}
	return out
}

// TotalSPEs counts SPEs across the cluster.
func (c *Cluster) TotalSPEs() int {
	t := 0
	for _, n := range c.Nodes {
		t += len(n.SPEs())
	}
	return t
}
