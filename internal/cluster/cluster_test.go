package cluster

import (
	"testing"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/sim"
)

func TestPaperSpecTopology(t *testing.T) {
	c, err := New(PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 12 {
		t.Fatalf("nodes = %d, want 12", len(c.Nodes))
	}
	if got := len(c.CellNodesList()); got != 8 {
		t.Fatalf("cell nodes = %d, want 8", got)
	}
	if got := len(c.XeonNodesList()); got != 4 {
		t.Fatalf("xeon nodes = %d, want 4", got)
	}
	if c.TotalSPEs() != 8*16 {
		t.Fatalf("SPEs = %d, want 128", c.TotalSPEs())
	}
	// Cell blades come first and keep stable IDs.
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	c, err := New(Spec{CellNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Params == nil || c.Params.LSSize != 256*1024 {
		t.Fatal("default params not applied")
	}
	if len(c.Nodes[0].SPEs()) != 16 {
		t.Fatalf("default CellsPerNode should be 2 (16 SPEs), got %d SPEs", len(c.Nodes[0].SPEs()))
	}
	if _, err := New(Spec{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestNetworkTiming(t *testing.T) {
	par := cellbe.DefaultParams()
	c, err := New(Spec{CellNodes: 2, Params: par})
	if err != nil {
		t.Fatal(err)
	}
	var arrival sim.Time
	c.K.Spawn("sender", func(p *sim.Proc) {
		arrival, _ = c.Net.Send(p, 0, 1, 1600)
	})
	if err := c.K.Run(); err != nil {
		t.Fatal(err)
	}
	want := c.Net.OneWayTime(1600)
	if arrival != want {
		t.Fatalf("arrival %s, want %s", arrival, want)
	}
	// Paper-scale sanity: 1600 B one-way should be in the 100-200us band
	// (hand-coded type 1 at 1600B is 160us).
	if arrival < 100*sim.Microsecond || arrival > 200*sim.Microsecond {
		t.Fatalf("1600B one-way %s outside the calibrated band", arrival)
	}
	msgs, bytes := c.Net.Stats()
	if msgs != 1 || bytes != 1600 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestNetworkContention(t *testing.T) {
	c, err := New(Spec{CellNodes: 2, XeonNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var a1, a2 sim.Time
	c.K.Spawn("s1", func(p *sim.Proc) { a1, _ = c.Net.Send(p, 0, 1, 100000) })
	c.K.Spawn("s2", func(p *sim.Proc) { a2, _ = c.Net.Send(p, 0, 2, 100000) })
	if err := c.K.Run(); err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Fatalf("second transfer on a shared NIC must queue: %s vs %s", a2, a1)
	}
}

func TestSpecRejectsNegativeCounts(t *testing.T) {
	if _, err := New(Spec{CellNodes: -1}); err == nil {
		t.Fatal("negative cell nodes accepted")
	}
	if _, err := New(Spec{CellNodes: 1, XeonNodes: -2}); err == nil {
		t.Fatal("negative xeon nodes accepted")
	}
}

func TestNodeListsPartition(t *testing.T) {
	c, err := New(Spec{CellNodes: 3, XeonNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.CellNodesList())+len(c.XeonNodesList()) != len(c.Nodes) {
		t.Fatal("node lists do not partition the cluster")
	}
	for _, n := range c.CellNodesList() {
		if n.Arch != cellbe.ArchCell {
			t.Fatal("wrong arch in cell list")
		}
	}
}
