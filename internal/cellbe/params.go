package cellbe

import "cellpilot/internal/sim"

// Params is the single calibrated timing/size table for the whole machine
// model. Defaults are fitted to paper Table II (see DESIGN.md §5 and
// EXPERIMENTS.md): the decomposition of each channel type into these
// primitives reproduces the paper's latency shape.
type Params struct {
	// --- Interconnect (gigabit Ethernet between nodes) ---

	// NetLatency is the one-way propagation + protocol-stack delay between
	// two nodes, excluding serialization.
	NetLatency sim.Time
	// NetBytesPerSec is the effective internode bandwidth seen by the slow
	// PPE TCP stack (well under raw GigE; fitted to Table II type 1).
	NetBytesPerSec float64
	// LinkStartup is per-message occupancy of the NIC before bytes flow.
	LinkStartup sim.Time

	// --- MPI software ---

	// MPISendOverhead is per-call software cost on the sending rank.
	MPISendOverhead sim.Time
	// MPIRecvOverhead is per-call software cost on the receiving rank.
	MPIRecvOverhead sim.Time
	// LocalMPILatency is the one-way latency of the intra-node (shared
	// memory) MPI path, excluding per-byte copying.
	LocalMPILatency sim.Time
	// LocalMPIBytesPerSec is the intra-node MPI copy bandwidth.
	LocalMPIBytesPerSec float64
	// EagerThreshold is the message size (bytes) above which sends use the
	// rendezvous protocol (sender waits for the matching receive).
	EagerThreshold int

	// --- Cell hardware ---

	// MailboxWrite is the cost of writing one 32-bit mailbox entry
	// (SPU channel write or PPE MMIO write).
	MailboxWrite sim.Time
	// MailboxRead is the cost of reading one mailbox entry.
	MailboxRead sim.Time
	// DMASetup is the MFC command issue + completion overhead per DMA.
	DMASetup sim.Time
	// EIBStartup is per-transfer EIB arbitration time.
	EIBStartup sim.Time
	// EIBBytesPerSec is EIB bandwidth (fast: 1600 B is nearly free).
	EIBBytesPerSec float64
	// MemcpyLatency is the fixed overhead of a PPE memcpy through the
	// memory-mapped local-store window (slow uncached access setup).
	MemcpyLatency sim.Time
	// MemcpyBytesPerSec is the PPE mapped-LS copy bandwidth.
	MemcpyBytesPerSec float64

	// --- Pilot / CellPilot software ---

	// PilotOverhead is per PI_Read/PI_Write bookkeeping (table lookup,
	// argument checking) on PPE/x86 processes.
	PilotOverhead sim.Time
	// SPEStubOverhead is the same bookkeeping in the SPE-side stub.
	SPEStubOverhead sim.Time
	// PackBytesPerSec is format-string pack/unpack bandwidth.
	PackBytesPerSec float64
	// CoPilotPoll is the Co-Pilot's SPE-mailbox polling interval.
	CoPilotPoll sim.Time
	// CoPilotDispatch is Co-Pilot per-request processing cost.
	CoPilotDispatch sim.Time
	// SPELaunch is the cost of PI_RunSPE: context creation, program load
	// into the local store, and thread spawn on the PPE.
	SPELaunch sim.Time

	// --- Chunked transfer engine (pipelined large-message path) ---
	//
	// The monolithic NetBytesPerSec above is an end-to-end fit: one 26 MB/s
	// charge stands in for the whole LS→EA copy + TCP injection + wire +
	// TCP extraction + EA→LS copy chain. The chunk pipeline models those
	// stages separately so they can overlap; the per-stage rates are
	// calibrated such that a single un-overlapped pass through all five
	// stages costs exactly the monolithic charge:
	//
	//	2/MemcpyBytesPerSec + 2/ChunkStackBytesPerSec + 1/ChunkWireBytesPerSec
	//	= 2/110e6 + 2/170.5e6 + 1/117e6 = 38.46 ns/B = 1/(26 MB/s)
	//
	// so disabling the pipeline (or sending one chunk) reproduces the
	// Table II fit, while deep pipelines are bounded by the slowest stage
	// (the 110 MB/s mapped-LS copy).

	// ChunkWireBytesPerSec is the raw per-chunk wire rate (GigE line rate
	// net of framing), used only by the chunked path's NIC booking.
	ChunkWireBytesPerSec float64
	// ChunkStackBytesPerSec is the per-chunk TCP/MPI stack injection (and
	// extraction) rate charged on the endpoint process per chunk.
	ChunkStackBytesPerSec float64
	// ChunkDMASetup is the per-chunk MFC command issue cost on the chunked
	// path (a DMA-list element, much cheaper than a standalone DMASetup).
	ChunkDMASetup sim.Time

	// --- SPE local-store budget (bytes) ---

	// LSSize is the SPE local-store size.
	LSSize int
	// CellPilotFootprint is the LS bytes consumed by the CellPilot SPE
	// runtime (paper: `size cellpilot.o` = 10336).
	CellPilotFootprint int
	// DaCSFootprint is the LS bytes libdacs.a consumes (paper: 36600).
	DaCSFootprint int
	// DefaultCodeSize is the assumed application code+data segment of an
	// SPE program when the program does not declare one.
	DefaultCodeSize int
	// StackReserve is LS reserved for the SPE runtime stack.
	StackReserve int
}

// DefaultParams returns the calibration fitted to paper Table II.
func DefaultParams() *Params {
	return &Params{
		NetLatency:     92 * sim.Microsecond,
		NetBytesPerSec: 26e6,
		LinkStartup:    2 * sim.Microsecond,

		MPISendOverhead:     4 * sim.Microsecond,
		MPIRecvOverhead:     4 * sim.Microsecond,
		LocalMPILatency:     8 * sim.Microsecond,
		LocalMPIBytesPerSec: 115e6,
		EagerThreshold:      4096,

		MailboxWrite:      3 * sim.Microsecond,
		MailboxRead:       500 * sim.Nanosecond,
		DMASetup:          14 * sim.Microsecond,
		EIBStartup:        100 * sim.Nanosecond,
		EIBBytesPerSec:    25.6e9,
		MemcpyLatency:     13 * sim.Microsecond,
		MemcpyBytesPerSec: 110e6,

		PilotOverhead:   3 * sim.Microsecond,
		SPEStubOverhead: 4 * sim.Microsecond,
		PackBytesPerSec: 1e9,
		CoPilotPoll:     14 * sim.Microsecond,
		CoPilotDispatch: 30 * sim.Microsecond,
		SPELaunch:       60 * sim.Microsecond,

		ChunkWireBytesPerSec:  117e6,
		ChunkStackBytesPerSec: 170.5e6,
		ChunkDMASetup:         1 * sim.Microsecond,

		LSSize:             256 * 1024,
		CellPilotFootprint: 10336,
		DaCSFootprint:      36600,
		DefaultCodeSize:    24 * 1024,
		StackReserve:       4 * 1024,
	}
}

// PackTime reports the cost of packing or unpacking n payload bytes
// through the format-string engine.
func (p *Params) PackTime(n int) sim.Time {
	if p.PackBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / p.PackBytesPerSec * float64(sim.Second))
}

// ShmCopyTime reports the cost of an ordinary cache-coherent main-memory
// copy between two processes on one node (the "fast shared-memory copy"
// of the paper's Section V analysis) — much cheaper than a copy through
// the uncached local-store mapping.
func (p *Params) ShmCopyTime(n int) sim.Time {
	d := sim.Microsecond
	if p.LocalMPIBytesPerSec > 0 && n > 0 {
		d += sim.Time(float64(n) / p.LocalMPIBytesPerSec * float64(sim.Second))
	}
	return d
}

// MemcpyTime reports the cost of a PPE copy of n bytes through the mapped
// local-store window.
func (p *Params) MemcpyTime(n int) sim.Time {
	d := p.MemcpyLatency
	if p.MemcpyBytesPerSec > 0 && n > 0 {
		d += sim.Time(float64(n) / p.MemcpyBytesPerSec * float64(sim.Second))
	}
	return d
}

// EIBTime reports the cost of moving n bytes over the element interconnect
// bus: arbitration plus the (very fast) per-byte rate.
func (p *Params) EIBTime(n int) sim.Time {
	d := p.EIBStartup
	if p.EIBBytesPerSec > 0 && n > 0 {
		d += sim.Time(float64(n) / p.EIBBytesPerSec * float64(sim.Second))
	}
	return d
}

// ChunkStackTime reports the TCP/MPI stack injection (or extraction) cost
// of one n-byte chunk on an endpoint process.
func (p *Params) ChunkStackTime(n int) sim.Time {
	if p.ChunkStackBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / p.ChunkStackBytesPerSec * float64(sim.Second))
}

// ChunkWireTime reports how long one n-byte chunk occupies the wire on the
// chunked path (no LinkStartup; the caller books that separately).
func (p *Params) ChunkWireTime(n int) sim.Time {
	if p.ChunkWireBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / p.ChunkWireBytesPerSec * float64(sim.Second))
}

// ChunkDMATime reports the LS↔EA move cost of one n-byte chunk: a DMA-list
// element issue plus the mapped-LS per-byte rate.
func (p *Params) ChunkDMATime(n int) sim.Time {
	d := p.ChunkDMASetup
	if p.MemcpyBytesPerSec > 0 && n > 0 {
		d += sim.Time(float64(n) / p.MemcpyBytesPerSec * float64(sim.Second))
	}
	return d
}
