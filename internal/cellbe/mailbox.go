package cellbe

import "cellpilot/internal/sim"

// Mailbox models one direction of an SPE's 32-bit mailbox channel. The real
// hardware provides a 4-entry inbound mailbox (PPE→SPE), a 1-entry outbound
// mailbox (SPE→PPE) and a 1-entry interrupting outbound mailbox; writes to a
// full mailbox and reads from an empty one stall.
type Mailbox struct {
	name string
	q    *sim.Queue[uint32]
	par  *Params
	// hook, when set, is consulted on every Write with the writer's fault
	// verdict: drop loses the word after the write cost is charged (the
	// store to the channel faults silently), stall adds latency first.
	hook func() (drop bool, stall sim.Time)
}

// SetFaultHook installs the fault-injection hook for this mailbox
// direction. A nil hook (the default) leaves Write untouched.
func (m *Mailbox) SetFaultHook(h func() (drop bool, stall sim.Time)) { m.hook = h }

// NewMailbox creates a mailbox with the given entry capacity.
func NewMailbox(k *sim.Kernel, name string, capacity int, par *Params) *Mailbox {
	return &Mailbox{name: name, q: sim.NewQueue[uint32](k, name, capacity), par: par}
}

// Write pushes one entry, stalling p while the mailbox is full.
func (m *Mailbox) Write(p *sim.Proc, v uint32) {
	p.Advance(m.par.MailboxWrite)
	if m.hook != nil {
		drop, stall := m.hook()
		if stall > 0 {
			p.Advance(stall)
		}
		if drop {
			return
		}
	}
	m.q.Put(p, v)
}

// Read pops one entry, stalling p while the mailbox is empty.
func (m *Mailbox) Read(p *sim.Proc) uint32 {
	p.Advance(m.par.MailboxRead)
	return m.q.Get(p)
}

// TryRead pops without stalling; ok reports whether an entry was present.
// The read-status check itself costs a mailbox read (the Co-Pilot's polling
// cost comes from here).
func (m *Mailbox) TryRead(p *sim.Proc) (v uint32, ok bool) {
	p.Advance(m.par.MailboxRead)
	return m.q.TryGet()
}

// TryWrite pushes without stalling; ok reports whether space existed.
func (m *Mailbox) TryWrite(p *sim.Proc, v uint32) bool {
	p.Advance(m.par.MailboxWrite)
	return m.q.TryPut(v)
}

// WriteCtl is Write bounded by an absolute deadline (0 = none) and an
// optional stop predicate — the hardened SPE stub uses it so a write to a
// full mailbox whose reader died cannot park forever. The fault hook
// applies exactly as in Write.
func (m *Mailbox) WriteCtl(p *sim.Proc, v uint32, deadline sim.Time, stop func() error) error {
	p.Advance(m.par.MailboxWrite)
	if m.hook != nil {
		drop, stall := m.hook()
		if stall > 0 {
			p.Advance(stall)
		}
		if drop {
			return nil
		}
	}
	return m.q.PutCtl(p, v, deadline, stop)
}

// ReadCtl is Read bounded by an absolute deadline (0 = none) and an
// optional stop predicate re-checked on every wake. It returns
// sim.ErrTimeout when the deadline passes first; with a zero deadline and
// nil stop it parks at exactly the same instants as Read.
func (m *Mailbox) ReadCtl(p *sim.Proc, deadline sim.Time, stop func() error) (uint32, error) {
	p.Advance(m.par.MailboxRead)
	return m.q.GetCtl(p, deadline, stop)
}

// ReadTimeout is Read bounded by a relative timeout; ok is false when the
// timeout expired before a word arrived.
func (m *Mailbox) ReadTimeout(p *sim.Proc, d sim.Time) (uint32, bool) {
	p.Advance(m.par.MailboxRead)
	return m.q.GetTimeout(p, d)
}

// Count reports the entries currently queued (spe_out_mbox_status).
func (m *Mailbox) Count() int { return m.q.Len() }

// Capacity reports the mailbox entry capacity.
func (m *Mailbox) Capacity() int { return m.q.Cap() }

// HighWater reports the largest occupancy the mailbox ever reached — the
// congestion watermark surfaced by the telemetry layer.
func (m *Mailbox) HighWater() int { return m.q.HighWater() }
