package cellbe

import "cellpilot/internal/sim"

// Mailbox models one direction of an SPE's 32-bit mailbox channel. The real
// hardware provides a 4-entry inbound mailbox (PPE→SPE), a 1-entry outbound
// mailbox (SPE→PPE) and a 1-entry interrupting outbound mailbox; writes to a
// full mailbox and reads from an empty one stall.
type Mailbox struct {
	name string
	q    *sim.Queue[uint32]
	par  *Params
}

// NewMailbox creates a mailbox with the given entry capacity.
func NewMailbox(k *sim.Kernel, name string, capacity int, par *Params) *Mailbox {
	return &Mailbox{name: name, q: sim.NewQueue[uint32](k, name, capacity), par: par}
}

// Write pushes one entry, stalling p while the mailbox is full.
func (m *Mailbox) Write(p *sim.Proc, v uint32) {
	p.Advance(m.par.MailboxWrite)
	m.q.Put(p, v)
}

// Read pops one entry, stalling p while the mailbox is empty.
func (m *Mailbox) Read(p *sim.Proc) uint32 {
	p.Advance(m.par.MailboxRead)
	return m.q.Get(p)
}

// TryRead pops without stalling; ok reports whether an entry was present.
// The read-status check itself costs a mailbox read (the Co-Pilot's polling
// cost comes from here).
func (m *Mailbox) TryRead(p *sim.Proc) (v uint32, ok bool) {
	p.Advance(m.par.MailboxRead)
	return m.q.TryGet()
}

// TryWrite pushes without stalling; ok reports whether space existed.
func (m *Mailbox) TryWrite(p *sim.Proc, v uint32) bool {
	p.Advance(m.par.MailboxWrite)
	return m.q.TryPut(v)
}

// Count reports the entries currently queued (spe_out_mbox_status).
func (m *Mailbox) Count() int { return m.q.Len() }
