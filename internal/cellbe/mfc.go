package cellbe

import (
	"fmt"

	"cellpilot/internal/sim"
)

// MFC is an SPE's Memory Flow Controller: the DMA engine that moves data
// between the local store and the node's effective-address space over the
// EIB. Transfers are tagged; TagWait blocks until every transfer issued
// under the tag mask has completed. The model enforces the Cell's alignment
// and size rules and performs the byte copy at issue time, with completion
// time computed from EIB occupancy.
type MFC struct {
	spe *SPE
	// completion[tag] is the virtual time the last transfer on tag finishes.
	completion [32]sim.Time
}

// MaxDMASize is the Cell's per-command DMA transfer limit.
const MaxDMASize = 16 * 1024

// checkDMA validates the Cell DMA rules: size 1,2,4,8 naturally aligned, or
// a multiple of 16 with both addresses 16-byte aligned, and at most 16 KB.
func checkDMA(lsAddr uint32, ea int64, size int) error {
	if size <= 0 || size > MaxDMASize {
		return fmt.Errorf("cellbe: DMA size %d out of range (1..%d)", size, MaxDMASize)
	}
	switch size {
	case 1, 2, 4, 8:
		if !IsAligned(int64(lsAddr), size) || !IsAligned(ea, size) {
			return fmt.Errorf("cellbe: DMA of %d bytes requires natural alignment (ls=%#x ea=%#x)", size, lsAddr, ea)
		}
	default:
		if size%16 != 0 {
			return fmt.Errorf("cellbe: DMA size %d must be 1,2,4,8 or a multiple of 16", size)
		}
		if !IsAligned(int64(lsAddr), 16) || !IsAligned(ea, 16) {
			return fmt.Errorf("cellbe: DMA requires 16-byte alignment (ls=%#x ea=%#x)", lsAddr, ea)
		}
	}
	return nil
}

// Put copies size bytes from local store lsAddr to effective address ea
// (mfc_put). The command is issued immediately; completion is observed via
// TagWait.
func (m *MFC) Put(p *sim.Proc, lsAddr uint32, ea int64, size int, tag int) error {
	return m.transfer(p, lsAddr, ea, size, tag, true)
}

// Get copies size bytes from effective address ea into local store lsAddr
// (mfc_get).
func (m *MFC) Get(p *sim.Proc, lsAddr uint32, ea int64, size int, tag int) error {
	return m.transfer(p, lsAddr, ea, size, tag, false)
}

func (m *MFC) transfer(p *sim.Proc, lsAddr uint32, ea int64, size, tag int, put bool) error {
	if tag < 0 || tag >= len(m.completion) {
		return fmt.Errorf("cellbe: DMA tag %d out of range", tag)
	}
	if err := checkDMA(lsAddr, ea, size); err != nil {
		return err
	}
	ls, err := m.spe.LS.Window(lsAddr, size)
	if err != nil {
		return err
	}
	mainWin, err := m.spe.Cell.Node.EAWindow(ea, size)
	if err != nil {
		return err
	}
	if put {
		copy(mainWin, ls)
	} else {
		copy(ls, mainWin)
	}
	// Issue cost on the SPU; the transfer itself proceeds asynchronously,
	// with EIB occupancy determining completion (observed by TagWait).
	p.Advance(m.spe.Cell.Node.Params.DMASetup)
	done := m.spe.Cell.EIB.Reserve(size)
	if done > m.completion[tag] {
		m.completion[tag] = done
	}
	return nil
}

// ListElement is one entry of a DMA list (mfc_list_element_t): a transfer
// between consecutive local-store addresses and a scattered effective
// address.
type ListElement struct {
	EA   int64
	Size int
}

// PutList issues a scatter DMA list (mfc_putl): elements are transferred
// from consecutive LS addresses starting at lsAddr to their individual
// effective addresses, all under one tag. Each element obeys the normal
// DMA rules; the list costs one setup plus per-element EIB occupancy,
// which is exactly why list DMA beats issuing separate commands.
func (m *MFC) PutList(p *sim.Proc, lsAddr uint32, list []ListElement, tag int) error {
	return m.transferList(p, lsAddr, list, tag, true)
}

// GetList issues a gather DMA list (mfc_getl).
func (m *MFC) GetList(p *sim.Proc, lsAddr uint32, list []ListElement, tag int) error {
	return m.transferList(p, lsAddr, list, tag, false)
}

// maxDMAListSize is the Cell's per-list element limit (2048 elements).
const maxDMAListSize = 2048

func (m *MFC) transferList(p *sim.Proc, lsAddr uint32, list []ListElement, tag int, put bool) error {
	if tag < 0 || tag >= len(m.completion) {
		return fmt.Errorf("cellbe: DMA tag %d out of range", tag)
	}
	if len(list) == 0 || len(list) > maxDMAListSize {
		return fmt.Errorf("cellbe: DMA list of %d elements out of range (1..%d)", len(list), maxDMAListSize)
	}
	// Validate everything before moving any byte: a malformed element
	// must not leave a half-applied list.
	off := lsAddr
	total := 0
	for i, el := range list {
		if err := checkDMA(off, el.EA, el.Size); err != nil {
			return fmt.Errorf("cellbe: DMA list element %d: %w", i, err)
		}
		off += uint32(el.Size)
		total += el.Size
	}
	if _, err := m.spe.LS.Window(lsAddr, total); err != nil {
		return err
	}
	off = lsAddr
	for _, el := range list {
		ls, err := m.spe.LS.Window(off, el.Size)
		if err != nil {
			return err
		}
		win, err := m.spe.Cell.Node.EAWindow(el.EA, el.Size)
		if err != nil {
			return err
		}
		if put {
			copy(win, ls)
		} else {
			copy(ls, win)
		}
		off += uint32(el.Size)
	}
	// One command setup; the elements stream over the EIB back to back.
	p.Advance(m.spe.Cell.Node.Params.DMASetup)
	var done sim.Time
	for _, el := range list {
		done = m.spe.Cell.EIB.Reserve(el.Size)
	}
	if done > m.completion[tag] {
		m.completion[tag] = done
	}
	return nil
}

// TagWait blocks p until all transfers whose tags are set in mask have
// completed (mfc_write_tag_mask + mfc_read_tag_status_all).
func (m *MFC) TagWait(p *sim.Proc, mask uint32) {
	var latest sim.Time
	for tag := 0; tag < len(m.completion); tag++ {
		if mask&(1<<tag) != 0 && m.completion[tag] > latest {
			latest = m.completion[tag]
		}
	}
	p.AdvanceTo(latest)
}
