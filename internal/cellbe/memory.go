package cellbe

import "fmt"

// Memory is a node's main memory: a flat byte array with a bump allocator.
// Addresses handed out are effective addresses within the node's EA space
// (main memory occupies [0, len)).
type Memory struct {
	data []byte
	brk  int64
}

// NewMemory allocates a main memory of the given size.
func NewMemory(size int) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size reports total capacity in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Alloc reserves n bytes aligned to align and returns the base address.
func (m *Memory) Alloc(n, align int) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("cellbe: negative allocation %d", n)
	}
	if align <= 0 {
		align = 1
	}
	base := int64(Align(int(m.brk), align))
	if base+int64(n) > int64(len(m.data)) {
		return 0, fmt.Errorf("cellbe: main memory exhausted (want %d bytes at %#x of %d)", n, base, len(m.data))
	}
	m.brk = base + int64(n)
	return base, nil
}

// Window returns a mutable view of [addr, addr+n).
func (m *Memory) Window(addr int64, n int) ([]byte, error) {
	if addr < 0 || n < 0 || addr+int64(n) > int64(len(m.data)) {
		return nil, fmt.Errorf("cellbe: main memory access [%#x,+%d) out of range", addr, n)
	}
	return m.data[addr : addr+int64(n) : addr+int64(n)], nil
}

// InUse reports the high-water mark of the allocator.
func (m *Memory) InUse() int64 { return m.brk }
