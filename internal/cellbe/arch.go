// Package cellbe models Cell Broadband Engine nodes — PPEs, SPEs with
// 256 KB local stores, mailboxes, MFC/DMA engines and the Element
// Interconnect Bus — plus plain x86 nodes, at the functional and timing
// fidelity the CellPilot protocols need. Data really moves through the
// simulated memories; latencies are charged in virtual time from a single
// calibrated Params table.
package cellbe

import "fmt"

// Arch identifies a node's instruction-set architecture. It drives wire
// conversion (Cell is big-endian, x86 little-endian) and processor
// enumeration.
type Arch int

const (
	// ArchCell is a Cell BE blade: PPEs plus SPE accelerators, big-endian.
	ArchCell Arch = iota
	// ArchX86 is a conventional node (the paper's Xeons), little-endian.
	ArchX86
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case ArchCell:
		return "cell"
	case ArchX86:
		return "x86"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// BigEndian reports whether the architecture's native byte order is
// big-endian (the Pilot wire format).
func (a Arch) BigEndian() bool { return a == ArchCell }

// ProcKind classifies a processor within a node.
type ProcKind int

const (
	// KindPPE is a Cell Power Processor Element (or one of its hardware
	// threads): runs Linux, hosts MPI ranks.
	KindPPE ProcKind = iota
	// KindSPE is a Synergistic Processor Element: 256 KB local store, no
	// direct access to main memory except through the MFC.
	KindSPE
	// KindCore is a conventional (x86) core; hosts MPI ranks.
	KindCore
)

// String implements fmt.Stringer.
func (k ProcKind) String() string {
	switch k {
	case KindPPE:
		return "PPE"
	case KindSPE:
		return "SPE"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Align rounds n up to the next multiple of a (a must be a power of two).
func Align(n, a int) int {
	return (n + a - 1) &^ (a - 1)
}

// IsAligned reports whether addr is a multiple of a (a power of two).
func IsAligned(addr int64, a int) bool {
	return addr&int64(a-1) == 0
}
