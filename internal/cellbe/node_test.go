package cellbe

import (
	"bytes"
	"strings"
	"testing"

	"cellpilot/internal/sim"
)

func newTestNode(k *sim.Kernel) *Node {
	return NewCellNode(k, 0, "cell0", 2, DefaultParams(), 1<<20)
}

func TestNodeTopology(t *testing.T) {
	k := sim.NewKernel(1)
	n := newTestNode(k)
	if len(n.Cells) != 2 || len(n.SPEs()) != 16 {
		t.Fatalf("cells=%d spes=%d, want 2/16", len(n.Cells), len(n.SPEs()))
	}
	spe, err := n.SPE(11)
	if err != nil {
		t.Fatal(err)
	}
	if spe.Cell.Index != 1 || spe.Index != 3 {
		t.Fatalf("SPE(11) = cell %d spe %d", spe.Cell.Index, spe.Index)
	}
	if _, err := n.SPE(16); err == nil {
		t.Fatal("SPE(16) on 2-cell blade should not exist")
	}
	x := NewX86Node(1, "xeon0", 8, DefaultParams(), 1<<20)
	if x.Arch != ArchX86 || len(x.SPEs()) != 0 || x.Cores != 8 {
		t.Fatalf("xeon node wrong: %+v", x)
	}
	if x.Arch.BigEndian() || !n.Arch.BigEndian() {
		t.Fatal("endianness mapping wrong")
	}
}

func TestEAWindowMainMemory(t *testing.T) {
	k := sim.NewKernel(1)
	n := newTestNode(k)
	addr, err := n.Mem.Alloc(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	w, err := n.EAWindow(addr, 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(w, []byte("hello"))
	w2, _ := n.Mem.Window(addr, 5)
	if string(w2) != "hello" {
		t.Fatal("EA window does not alias main memory")
	}
}

func TestEAWindowMapsLocalStore(t *testing.T) {
	k := sim.NewKernel(1)
	n := newTestNode(k)
	spe, _ := n.SPE(9)
	lsAddr, err := spe.LS.Alloc("buf", 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	ea := spe.LSBase() + int64(lsAddr)
	if !IsLSMapped(ea) {
		t.Fatal("LS EA not recognized as mapped")
	}
	w, err := n.EAWindow(ea, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(w, []byte("through the EA window"))
	direct, _ := spe.LS.Window(lsAddr, 21)
	if string(direct) != "through the EA window" {
		t.Fatal("EA window does not alias the local store")
	}
	// Out-of-range LS access through EA must fail.
	if _, err := n.EAWindow(spe.LSBase()+int64(spe.LS.Size())-8, 64); err == nil {
		t.Fatal("EA overrun of local store succeeded")
	}
	if _, err := n.EAWindow(LSMapBase+99*LSMapStride, 4); err == nil {
		t.Fatal("EA of nonexistent SPE succeeded")
	}
}

func TestMailboxBlocking(t *testing.T) {
	k := sim.NewKernel(1)
	n := newTestNode(k)
	spe, _ := n.SPE(0)
	var got []uint32
	k.Spawn("spe", func(p *sim.Proc) {
		// Outbound mailbox has 1 entry: second write stalls until drained.
		spe.OutMbox.Write(p, 100)
		spe.OutMbox.Write(p, 200)
	})
	k.Spawn("ppe", func(p *sim.Proc) {
		p.Advance(50 * sim.Microsecond)
		got = append(got, spe.OutMbox.Read(p))
		got = append(got, spe.OutMbox.Read(p))
		if v, ok := spe.OutMbox.TryRead(p); ok {
			p.Fatalf("unexpected extra entry %d", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("got %v", got)
	}
}

func TestMFCTransfersAndAlignment(t *testing.T) {
	k := sim.NewKernel(1)
	n := newTestNode(k)
	spe, _ := n.SPE(3)
	mainAddr, _ := n.Mem.Alloc(4096, 128)
	var errs []string
	k.Spawn("spe", func(p *sim.Proc) {
		lsAddr, err := spe.LS.Alloc("buf", 1600, 128)
		if err != nil {
			p.Fatalf("%v", err)
		}
		w, _ := spe.LS.Window(lsAddr, 1600)
		for i := range w {
			w[i] = byte(i * 7)
		}
		if err := spe.MFC.Put(p, lsAddr, mainAddr, 1600, 5); err != nil {
			p.Fatalf("put: %v", err)
		}
		spe.MFC.TagWait(p, 1<<5)
		mw, _ := n.Mem.Window(mainAddr, 1600)
		if !bytes.Equal(mw, w) {
			p.Fatalf("DMA put corrupted data")
		}
		// Round-trip back into a second LS buffer.
		ls2, _ := spe.LS.Alloc("buf2", 1600, 128)
		if err := spe.MFC.Get(p, ls2, mainAddr, 1600, 6); err != nil {
			p.Fatalf("get: %v", err)
		}
		spe.MFC.TagWait(p, 1<<6)
		w2, _ := spe.LS.Window(ls2, 1600)
		if !bytes.Equal(w2, w) {
			p.Fatalf("DMA get corrupted data")
		}

		// Alignment violations.
		if err := spe.MFC.Put(p, lsAddr+1, mainAddr, 32, 0); err == nil {
			errs = append(errs, "unaligned ls accepted")
		}
		if err := spe.MFC.Put(p, lsAddr, mainAddr+4, 32, 0); err == nil {
			errs = append(errs, "unaligned ea accepted")
		}
		if err := spe.MFC.Put(p, lsAddr, mainAddr, 24, 0); err == nil {
			errs = append(errs, "size 24 accepted")
		}
		if err := spe.MFC.Put(p, lsAddr, mainAddr, MaxDMASize+16, 0); err == nil {
			errs = append(errs, "oversize accepted")
		}
		if err := spe.MFC.Put(p, lsAddr+2, mainAddr+2, 2, 1); err != nil {
			errs = append(errs, "naturally aligned 2-byte rejected: "+err.Error())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatal(strings.Join(errs, "; "))
	}
}

func TestMFCTimingChargesSetup(t *testing.T) {
	k := sim.NewKernel(1)
	par := DefaultParams()
	n := NewCellNode(k, 0, "cell0", 1, par, 1<<20)
	spe, _ := n.SPE(0)
	mainAddr, _ := n.Mem.Alloc(4096, 128)
	var elapsed sim.Time
	k.Spawn("spe", func(p *sim.Proc) {
		lsAddr, _ := spe.LS.Alloc("buf", 1600, 128)
		start := p.Now()
		if err := spe.MFC.Put(p, lsAddr, mainAddr, 1600, 0); err != nil {
			p.Fatalf("%v", err)
		}
		spe.MFC.TagWait(p, 1)
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < par.DMASetup {
		t.Fatalf("DMA elapsed %s < setup %s", elapsed, par.DMASetup)
	}
	// 1600 B over the EIB is nearly free: well under 1us of bandwidth time.
	if elapsed > par.DMASetup+2*sim.Microsecond {
		t.Fatalf("DMA of 1600B took %s, expected ~setup cost", elapsed)
	}
}

func TestParamsCostHelpers(t *testing.T) {
	p := DefaultParams()
	if p.PackTime(0) != 0 {
		t.Fatal("PackTime(0) != 0")
	}
	if p.PackTime(1<<20) <= 0 {
		t.Fatal("PackTime not increasing")
	}
	if p.MemcpyTime(0) != p.MemcpyLatency {
		t.Fatal("MemcpyTime(0) != latency")
	}
	if p.MemcpyTime(1600) <= p.MemcpyLatency {
		t.Fatal("MemcpyTime missing per-byte cost")
	}
}

func TestMemoryAllocator(t *testing.T) {
	m := NewMemory(1024)
	a, err := m.Alloc(100, 128)
	if err != nil || a != 0 {
		t.Fatalf("a=%d err=%v", a, err)
	}
	b, err := m.Alloc(100, 128)
	if err != nil || b != 128 {
		t.Fatalf("b=%d err=%v", b, err)
	}
	if _, err := m.Alloc(2048, 1); err == nil {
		t.Fatal("overflow alloc succeeded")
	}
	if _, err := m.Window(1000, 100); err == nil {
		t.Fatal("out-of-range window succeeded")
	}
}
