package cellbe

import (
	"testing"
	"testing/quick"

	"cellpilot/internal/sim"
)

func TestMailboxCapacityMatchesHardware(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewCellNode(k, 0, "c", 1, DefaultParams(), 1<<20)
	spe, _ := n.SPE(0)
	k.Spawn("probe", func(p *sim.Proc) {
		// Inbound mailbox: 4 entries before writes stall.
		for i := 0; i < 4; i++ {
			if !spe.InMbox.TryWrite(p, uint32(i)) {
				p.Fatalf("inbound entry %d rejected", i)
			}
		}
		if spe.InMbox.TryWrite(p, 99) {
			p.Fatalf("5th inbound entry accepted")
		}
		if spe.InMbox.Count() != 4 {
			p.Fatalf("count = %d", spe.InMbox.Count())
		}
		// Outbound mailbox: single entry.
		if !spe.OutMbox.TryWrite(p, 1) || spe.OutMbox.TryWrite(p, 2) {
			p.Fatalf("outbound capacity wrong")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxChargesTime(t *testing.T) {
	k := sim.NewKernel(1)
	par := DefaultParams()
	n := NewCellNode(k, 0, "c", 1, par, 1<<20)
	spe, _ := n.SPE(0)
	k.Spawn("timer", func(p *sim.Proc) {
		start := p.Now()
		spe.InMbox.Write(p, 1)
		if p.Now()-start != par.MailboxWrite {
			p.Fatalf("write cost %s", p.Now()-start)
		}
		start = p.Now()
		spe.InMbox.Read(p)
		if p.Now()-start != par.MailboxRead {
			p.Fatalf("read cost %s", p.Now()-start)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: any interleaving of writes and reads preserves FIFO order
// through the 4-deep inbound mailbox.
func TestMailboxFIFOProperty(t *testing.T) {
	prop := func(vals []uint32) bool {
		if len(vals) > 50 {
			vals = vals[:50]
		}
		k := sim.NewKernel(3)
		n := NewCellNode(k, 0, "c", 1, DefaultParams(), 1<<20)
		spe, _ := n.SPE(0)
		var got []uint32
		k.Spawn("writer", func(p *sim.Proc) {
			for _, v := range vals {
				spe.InMbox.Write(p, v)
			}
		})
		k.Spawn("reader", func(p *sim.Proc) {
			for range vals {
				got = append(got, spe.InMbox.Read(p))
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the EA map is a bijection between (SPE, offset) and EA for
// in-range addresses, and the windows alias the same storage.
func TestEAMapProperty(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewCellNode(k, 0, "c", 2, DefaultParams(), 1<<20)
	prop := func(speIdx uint8, off uint32, val byte) bool {
		spe, err := n.SPE(int(speIdx) % 16)
		if err != nil {
			return false
		}
		offset := off % uint32(spe.LS.Size()-1)
		ea := spe.LSBase() + int64(offset)
		w, err := n.EAWindow(ea, 1)
		if err != nil {
			return false
		}
		w[0] = val
		direct, err := spe.LS.Window(offset, 1)
		if err != nil {
			return false
		}
		return direct[0] == val
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
