package cellbe

import (
	"testing"

	"cellpilot/internal/sim"
)

func TestSignalModesDirect(t *testing.T) {
	k := sim.NewKernel(1)
	par := DefaultParams()
	or := NewSignal(k, "snr1", SignalOR, par)
	ow := NewSignal(k, "snr2", SignalOverwrite, par)
	if or.Mode() != SignalOR || ow.Mode() != SignalOverwrite {
		t.Fatal("modes wrong")
	}
	k.Spawn("writer", func(p *sim.Proc) {
		or.Write(p, 0b001)
		or.Write(p, 0b100)
		ow.Write(p, 11)
		ow.Write(p, 22)
		if or.Pending() != 0b101 || ow.Pending() != 22 {
			p.Fatalf("pending or=%#b ow=%d", or.Pending(), ow.Pending())
		}
		if v, ok := or.TryRead(p); !ok || v != 0b101 {
			p.Fatalf("tryread %d %v", v, ok)
		}
		if _, ok := or.TryRead(p); ok {
			p.Fatalf("tryread after clear succeeded")
		}
		if v := ow.Read(p); v != 22 {
			p.Fatalf("read %d", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalBlockingReadDirect(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewSignal(k, "s", SignalOR, DefaultParams())
	var at sim.Time
	k.Spawn("reader", func(p *sim.Proc) {
		if v := s.Read(p); v != 5 {
			p.Fatalf("got %d", v)
		}
		at = p.Now()
	})
	k.Spawn("writer", func(p *sim.Proc) {
		p.Advance(40 * sim.Microsecond)
		s.Write(p, 5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 40*sim.Microsecond {
		t.Fatalf("read returned at %s", at)
	}
}

func TestStringersAndHelpers(t *testing.T) {
	if ArchCell.String() != "cell" || ArchX86.String() != "x86" || Arch(9).String() == "" {
		t.Fatal("Arch.String wrong")
	}
	if KindPPE.String() != "PPE" || KindSPE.String() != "SPE" || KindCore.String() != "core" || ProcKind(9).String() == "" {
		t.Fatal("ProcKind.String wrong")
	}
	m := NewMemory(128)
	if m.Size() != 128 {
		t.Fatal("Size wrong")
	}
	if _, err := m.Alloc(64, 16); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 64 {
		t.Fatalf("InUse = %d", m.InUse())
	}
	if _, err := m.Alloc(-1, 1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	par := DefaultParams()
	if par.ShmCopyTime(0) <= 0 || par.ShmCopyTime(1<<20) <= par.ShmCopyTime(1) {
		t.Fatal("ShmCopyTime not sane")
	}
}
