package cellbe

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestLocalStoreImageAndAlloc(t *testing.T) {
	ls := NewLocalStore(256 * 1024)
	if err := ls.LoadImage("runtime+code", 10336+24*1024+4*1024); err != nil {
		t.Fatal(err)
	}
	if ls.Resident() != 10336+24*1024+4*1024 {
		t.Fatalf("resident = %d", ls.Resident())
	}
	addr, err := ls.Alloc("buf", 1600, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !IsAligned(int64(addr), 16) {
		t.Fatalf("alloc not quad-word aligned: %#x", addr)
	}
	w, err := ls.Window(addr, 1600)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		w[i] = byte(i)
	}
	w2, _ := ls.Window(addr, 1600)
	if w2[1599] != byte(1599%256) {
		t.Fatal("window does not alias store")
	}
	ls.Release()
	if ls.Free() != 256*1024-Align(ls.Resident(), 16) {
		t.Fatalf("free after release = %d", ls.Free())
	}
}

func TestLocalStoreOverflow(t *testing.T) {
	ls := NewLocalStore(256 * 1024)
	if err := ls.LoadImage("huge", 300*1024); err == nil {
		t.Fatal("oversized image load succeeded")
	}
	if err := ls.LoadImage("rt", 200*1024); err != nil {
		t.Fatal(err)
	}
	_, err := ls.Alloc("buf", 100*1024, 16)
	var ov *ErrLSOverflow
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want ErrLSOverflow", err)
	}
	if ov.Want != 100*1024 || !strings.Contains(err.Error(), "local store overflow") {
		t.Fatalf("bad overflow detail: %v", err)
	}
}

func TestLocalStoreLIFO(t *testing.T) {
	ls := NewLocalStore(64 * 1024)
	a1, _ := ls.Alloc("a", 100, 16)
	a2, _ := ls.Alloc("b", 100, 16)
	if a2 <= a1 {
		t.Fatalf("allocations not increasing: %#x then %#x", a1, a2)
	}
	ls.Release()
	a3, _ := ls.Alloc("c", 100, 16)
	if a3 != a2 {
		t.Fatalf("LIFO release not reusing space: %#x vs %#x", a3, a2)
	}
	if err := ls.Release(); err != nil {
		t.Fatalf("matched Release errored: %v", err)
	}
	if err := ls.Release(); err != nil {
		t.Fatalf("matched Release errored: %v", err)
	}
	if err := ls.Release(); err == nil {
		t.Fatal("unbalanced Release did not error")
	}
}

func TestLocalStoreWindowBounds(t *testing.T) {
	ls := NewLocalStore(1024)
	if _, err := ls.Window(1000, 100); err == nil {
		t.Fatal("out-of-range window succeeded")
	}
	if _, err := ls.Window(0, -1); err == nil {
		t.Fatal("negative window succeeded")
	}
}

// Property: alloc/release sequences never hand out overlapping live buffers
// and never exceed the store.
func TestLocalStoreAllocProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		ls := NewLocalStore(64 * 1024)
		type span struct{ lo, hi int }
		var live []span
		for _, s := range sizes {
			n := int(s%4096) + 1
			addr, err := ls.Alloc("x", n, 16)
			if err != nil {
				// Overflow is fine; the store must still be consistent.
				continue
			}
			sp := span{int(addr), int(addr) + n}
			if sp.hi > ls.Size() {
				return false
			}
			for _, o := range live {
				if sp.lo < o.hi && o.lo < sp.hi {
					return false // overlap
				}
			}
			live = append(live, sp)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	cases := []struct{ n, a, want int }{
		{0, 16, 0}, {1, 16, 16}, {16, 16, 16}, {17, 16, 32}, {100, 128, 128},
	}
	for _, c := range cases {
		if got := Align(c.n, c.a); got != c.want {
			t.Errorf("Align(%d,%d) = %d, want %d", c.n, c.a, got, c.want)
		}
	}
	if !IsAligned(0x1230, 16) || IsAligned(0x1231, 16) {
		t.Fatal("IsAligned wrong")
	}
}
