package cellbe

import (
	"fmt"
	"testing"

	"cellpilot/internal/sim"
)

// TestEIBContention drives all 8 SPEs of one Cell through simultaneous
// large DMAs and checks the bus arbitrates: completions spread out
// instead of finishing together, and total occupancy matches bandwidth.
func TestEIBContention(t *testing.T) {
	k := sim.NewKernel(1)
	par := DefaultParams()
	par.EIBBytesPerSec = 1e9 // slow the bus so serialization is visible
	n := NewCellNode(k, 0, "c", 1, par, 8<<20)
	const size = 16 * 1024 // one max-size DMA each
	completions := make([]sim.Time, 8)
	for s := 0; s < 8; s++ {
		s := s
		spe, _ := n.SPE(s)
		ea, err := n.Mem.Alloc(size, 128)
		if err != nil {
			t.Fatal(err)
		}
		k.Spawn(fmt.Sprintf("spe%d", s), func(p *sim.Proc) {
			lsAddr, err := spe.LS.Alloc("buf", size, 128)
			if err != nil {
				p.Fatalf("%v", err)
			}
			if err := spe.MFC.Put(p, lsAddr, ea, size, 1); err != nil {
				p.Fatalf("%v", err)
			}
			spe.MFC.TagWait(p, 1<<1)
			completions[s] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Serialization per transfer at 1 GB/s: 16KB ≈ 16.4us. Eight queued
	// transfers must finish roughly one serialization apart.
	perXfer := sim.Time(float64(size) / par.EIBBytesPerSec * float64(sim.Second))
	min, max := completions[0], completions[0]
	for _, c := range completions {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min < 6*perXfer {
		t.Fatalf("EIB did not serialize: spread %s, per-transfer %s", max-min, perXfer)
	}
	if max < 8*perXfer {
		t.Fatalf("total occupancy %s below 8 serialized transfers (%s)", max, 8*perXfer)
	}
}
