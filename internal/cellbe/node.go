package cellbe

import (
	"fmt"

	"cellpilot/internal/sim"
)

// LS mapping constants: each SPE's local store is mapped into the node's
// effective-address space (spe_ls_area_get), at LSMapBase plus a 1 MB
// stride per SPE. Main memory occupies low addresses.
const (
	LSMapBase   int64 = 0x3_0000_0000
	LSMapStride int64 = 0x10_0000
)

// SPE is one Synergistic Processor Element.
type SPE struct {
	Cell        *Cell
	Index       int // within its Cell (0..7)
	GlobalIndex int // within its Node
	LS          *LocalStore
	MFC         *MFC
	// InMbox is the PPE→SPE mailbox (4 entries on real hardware).
	InMbox *Mailbox
	// OutMbox is the SPE→PPE mailbox (1 entry).
	OutMbox *Mailbox
	// SNR1 and SNR2 are the signal-notification registers: SNR1 in OR
	// mode (many senders, one bit each), SNR2 in overwrite mode, the
	// usual Linux-on-Cell configuration.
	SNR1, SNR2 *Signal
	// Busy marks the SPE as running a context.
	Busy bool
}

// Name identifies the SPE in traces and errors.
func (s *SPE) Name() string {
	return fmt.Sprintf("%s/spe%d", s.Cell.Node.Name, s.GlobalIndex)
}

// LSBase reports the effective address at which this SPE's local store is
// mapped into the node's address space.
func (s *SPE) LSBase() int64 {
	return LSMapBase + int64(s.GlobalIndex)*LSMapStride
}

// Cell is one Cell BE processor: a PPE (with two hardware threads) and
// eight SPEs around the Element Interconnect Bus.
type Cell struct {
	Node  *Node
	Index int
	SPEs  []*SPE
	// EIB is the on-chip interconnect all LS↔memory traffic crosses.
	EIB *sim.Resource
}

// Node is one cluster machine: a Cell blade (Cells populated) or an x86
// box (no Cells). All processors on a node share Mem and one EA space.
type Node struct {
	ID     int
	Name   string
	Arch   Arch
	Params *Params
	Mem    *Memory
	Cells  []*Cell
	// Cores is the number of rank-hosting general-purpose processors:
	// PPEs for a blade, cores for an x86 node.
	Cores int
}

// NewCellNode builds a Cell blade with nCells processors (the paper's
// nodes are dual PowerXCell 8i, so nCells=2), 8 SPEs each.
func NewCellNode(k *sim.Kernel, id int, name string, nCells int, par *Params, memSize int) *Node {
	n := &Node{ID: id, Name: name, Arch: ArchCell, Params: par, Mem: NewMemory(memSize), Cores: nCells}
	for c := 0; c < nCells; c++ {
		cell := &Cell{
			Node:  n,
			Index: c,
			EIB:   sim.NewResource(k, fmt.Sprintf("%s/eib%d", name, c), par.EIBStartup, par.EIBBytesPerSec, 0),
		}
		for s := 0; s < 8; s++ {
			spe := &SPE{
				Cell:        cell,
				Index:       s,
				GlobalIndex: c*8 + s,
				LS:          NewLocalStore(par.LSSize),
				InMbox:      NewMailbox(k, fmt.Sprintf("%s/spe%d/in", name, c*8+s), 4, par),
				OutMbox:     NewMailbox(k, fmt.Sprintf("%s/spe%d/out", name, c*8+s), 1, par),
				SNR1:        NewSignal(k, fmt.Sprintf("%s/spe%d/snr1", name, c*8+s), SignalOR, par),
				SNR2:        NewSignal(k, fmt.Sprintf("%s/spe%d/snr2", name, c*8+s), SignalOverwrite, par),
			}
			spe.MFC = &MFC{spe: spe}
			cell.SPEs = append(cell.SPEs, spe)
		}
		n.Cells = append(n.Cells, cell)
	}
	return n
}

// NewX86Node builds a conventional node with the given core count.
func NewX86Node(id int, name string, cores int, par *Params, memSize int) *Node {
	return &Node{ID: id, Name: name, Arch: ArchX86, Params: par, Mem: NewMemory(memSize), Cores: cores}
}

// SPEs enumerates every SPE on the node in global order.
func (n *Node) SPEs() []*SPE {
	var out []*SPE
	for _, c := range n.Cells {
		out = append(out, c.SPEs...)
	}
	return out
}

// SPE returns the SPE with the given node-global index.
func (n *Node) SPE(global int) (*SPE, error) {
	c := global / 8
	if c < 0 || c >= len(n.Cells) {
		return nil, fmt.Errorf("cellbe: node %s has no SPE %d", n.Name, global)
	}
	return n.Cells[c].SPEs[global%8], nil
}

// EAWindow resolves an effective-address range to the backing bytes: main
// memory for low addresses, or a memory-mapped SPE local store. This is
// the mechanism CellPilot's Co-Pilot exploits to move SPE data without DMA.
func (n *Node) EAWindow(ea int64, size int) ([]byte, error) {
	if ea < 0 || size < 0 {
		return nil, fmt.Errorf("cellbe: bad EA range [%#x,+%d)", ea, size)
	}
	if ea < LSMapBase {
		return n.Mem.Window(ea, size)
	}
	idx := (ea - LSMapBase) / LSMapStride
	off := (ea - LSMapBase) % LSMapStride
	spe, err := n.SPE(int(idx))
	if err != nil {
		return nil, fmt.Errorf("cellbe: EA %#x maps to no SPE on %s", ea, n.Name)
	}
	if off+int64(size) > int64(spe.LS.Size()) {
		return nil, fmt.Errorf("cellbe: EA range [%#x,+%d) exceeds %s local store", ea, size, spe.Name())
	}
	return spe.LS.Window(uint32(off), size)
}

// IsLSMapped reports whether ea falls in the local-store mapping region.
func IsLSMapped(ea int64) bool { return ea >= LSMapBase }
