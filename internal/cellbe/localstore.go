package cellbe

import "fmt"

// LocalStore is one SPE's private 256 KB memory. Its layout mirrors a real
// SPE program image: a resident region (library runtime + program code +
// stack reserve) claimed once at load time, with the remainder available to
// a stack-disciplined buffer allocator for message staging. Exceeding the
// store is the paper's central resource constraint and is reported as an
// explicit error, never a silent wrap.
type LocalStore struct {
	data      []byte
	resident  int // bytes claimed by runtime/code/stack, at the bottom
	top       int // bump pointer for buffer allocations
	highWater int // largest top ever reached (for utilization reports)
	allocs    []int
}

// ErrLSOverflow is returned (wrapped) when an allocation or load exceeds
// the local store.
type ErrLSOverflow struct {
	Want, Free, Size int
	What             string
}

// Error implements error.
func (e *ErrLSOverflow) Error() string {
	return fmt.Sprintf("cellbe: SPE local store overflow: %s needs %d bytes, %d free of %d",
		e.What, e.Want, e.Free, e.Size)
}

// NewLocalStore creates a local store of size bytes.
func NewLocalStore(size int) *LocalStore {
	ls := &LocalStore{data: make([]byte, size)}
	ls.top = 0
	return ls
}

// Size reports the store's capacity.
func (ls *LocalStore) Size() int { return len(ls.data) }

// Free reports bytes available to the buffer allocator.
func (ls *LocalStore) Free() int { return len(ls.data) - ls.top }

// Resident reports bytes claimed by LoadImage.
func (ls *LocalStore) Resident() int { return ls.resident }

// LoadImage claims n resident bytes at the bottom of the store (runtime
// library, program text/data, stack reserve). It resets any existing image
// and all buffer allocations, as loading a new SPE program does.
func (ls *LocalStore) LoadImage(what string, n int) error {
	if n > len(ls.data) {
		return &ErrLSOverflow{Want: n, Free: len(ls.data), Size: len(ls.data), What: what}
	}
	ls.resident = n
	ls.top = Align(n, 16)
	ls.allocs = ls.allocs[:0]
	return nil
}

// Alloc reserves n bytes aligned to align from the buffer region and
// returns the LS address. Allocations are released in LIFO order.
func (ls *LocalStore) Alloc(what string, n, align int) (uint32, error) {
	if align <= 0 {
		align = 16 // quad-word: the Cell's preferred DMA alignment
	}
	base := Align(ls.top, align)
	if base+n > len(ls.data) {
		return 0, &ErrLSOverflow{Want: n, Free: ls.Free(), Size: len(ls.data), What: what}
	}
	ls.allocs = append(ls.allocs, ls.top)
	ls.top = base + n
	if ls.top > ls.highWater {
		ls.highWater = ls.top
	}
	return uint32(base), nil
}

// HighWater reports the deepest local-store occupancy ever reached
// (resident image plus the largest live buffer stack).
func (ls *LocalStore) HighWater() int {
	if ls.highWater < ls.resident {
		return ls.resident
	}
	return ls.highWater
}

// Release frees the most recent allocation (LIFO discipline, matching the
// stub's stack usage). An unmatched Release is a stub bug; it is reported
// as an error so the protocol layers can route it through the
// application's abort path with a proper diagnostic instead of crashing
// the host process.
func (ls *LocalStore) Release() error {
	if len(ls.allocs) == 0 {
		return fmt.Errorf("cellbe: LocalStore.Release without matching Alloc")
	}
	ls.top = ls.allocs[len(ls.allocs)-1]
	ls.allocs = ls.allocs[:len(ls.allocs)-1]
	return nil
}

// Window returns a mutable view of LS bytes [addr, addr+n).
func (ls *LocalStore) Window(addr uint32, n int) ([]byte, error) {
	if int(addr)+n > len(ls.data) || n < 0 {
		return nil, fmt.Errorf("cellbe: LS access [%#x,+%d) out of range (size %d)", addr, n, len(ls.data))
	}
	return ls.data[addr : int(addr)+n : int(addr)+n], nil
}
