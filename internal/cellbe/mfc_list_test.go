package cellbe

import (
	"bytes"
	"testing"

	"cellpilot/internal/sim"
)

func TestDMAListScatterGather(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewCellNode(k, 0, "c", 1, DefaultParams(), 1<<20)
	spe, _ := n.SPE(0)
	// Three scattered main-memory regions.
	ea1, _ := n.Mem.Alloc(256, 128)
	ea2, _ := n.Mem.Alloc(256, 128)
	ea3, _ := n.Mem.Alloc(256, 128)
	list := []ListElement{{EA: ea1, Size: 64}, {EA: ea2, Size: 128}, {EA: ea3, Size: 32}}

	k.Spawn("spe", func(p *sim.Proc) {
		lsAddr, _ := spe.LS.Alloc("buf", 224, 128)
		w, _ := spe.LS.Window(lsAddr, 224)
		for i := range w {
			w[i] = byte(i + 1)
		}
		if err := spe.MFC.PutList(p, lsAddr, list, 4); err != nil {
			p.Fatalf("putl: %v", err)
		}
		spe.MFC.TagWait(p, 1<<4)
		// Scatter landed contiguous pieces at each EA.
		w1, _ := n.Mem.Window(ea1, 64)
		w2, _ := n.Mem.Window(ea2, 128)
		w3, _ := n.Mem.Window(ea3, 32)
		if !bytes.Equal(w1, w[:64]) || !bytes.Equal(w2, w[64:192]) || !bytes.Equal(w3, w[192:224]) {
			p.Fatalf("scatter wrong")
		}
		// Gather back into a second buffer and compare.
		ls2, _ := spe.LS.Alloc("buf2", 224, 128)
		if err := spe.MFC.GetList(p, ls2, list, 5); err != nil {
			p.Fatalf("getl: %v", err)
		}
		spe.MFC.TagWait(p, 1<<5)
		g, _ := spe.LS.Window(ls2, 224)
		if !bytes.Equal(g, w) {
			p.Fatalf("gather wrong")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDMAListValidation(t *testing.T) {
	k := sim.NewKernel(1)
	n := NewCellNode(k, 0, "c", 1, DefaultParams(), 1<<20)
	spe, _ := n.SPE(0)
	ea, _ := n.Mem.Alloc(4096, 128)
	k.Spawn("spe", func(p *sim.Proc) {
		lsAddr, _ := spe.LS.Alloc("buf", 4096, 128)
		if err := spe.MFC.PutList(p, lsAddr, nil, 0); err == nil {
			p.Fatalf("empty list accepted")
		}
		big := make([]ListElement, maxDMAListSize+1)
		for i := range big {
			big[i] = ListElement{EA: ea, Size: 16}
		}
		if err := spe.MFC.PutList(p, lsAddr, big, 0); err == nil {
			p.Fatalf("oversized list accepted")
		}
		// An invalid element mid-list must reject the whole list before
		// any byte moves.
		w, _ := n.Mem.Window(ea, 16)
		w[0] = 0xEE
		bad := []ListElement{
			{EA: ea, Size: 16},
			{EA: ea + 3, Size: 16}, // misaligned
		}
		lsw, _ := spe.LS.Window(lsAddr, 16)
		lsw[0] = 0x11
		if err := spe.MFC.PutList(p, lsAddr, bad, 0); err == nil {
			p.Fatalf("misaligned element accepted")
		}
		if w[0] != 0xEE {
			p.Fatalf("half-applied DMA list")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
