package cellbe

import (
	"fmt"

	"cellpilot/internal/sim"
)

// SignalMode selects a signal-notification register's accumulation
// behaviour.
type SignalMode int

// Signal modes (SPU_SignalNotify configuration).
const (
	// SignalOverwrite replaces the register value on each write.
	SignalOverwrite SignalMode = iota
	// SignalOR accumulates writes bitwise, letting many senders each own
	// a bit — the pattern BlockLib-style libraries use for barriers.
	SignalOR
)

// Signal models one of an SPE's two signal-notification registers
// (SNR1/SNR2): a 32-bit register written by other processors through the
// problem-state mapping and read-and-cleared by the SPU, which stalls
// while the register is zero.
type Signal struct {
	name   string
	mode   SignalMode
	par    *Params
	k      *sim.Kernel
	value  uint32
	nonneg bool
	waiter *sim.Proc
}

// NewSignal creates a signal register.
func NewSignal(k *sim.Kernel, name string, mode SignalMode, par *Params) *Signal {
	return &Signal{name: name, mode: mode, par: par, k: k}
}

// Mode reports the configured accumulation mode.
func (s *Signal) Mode() SignalMode { return s.mode }

// Pending reports the current register value without consuming it.
func (s *Signal) Pending() uint32 { return s.value }

// Write delivers v to the register (spe_signal_write / an MMIO store
// through the EA mapping). In OR mode bits accumulate; in overwrite mode
// the value is replaced. A waiting SPU is released if the register
// becomes non-zero.
func (s *Signal) Write(p *sim.Proc, v uint32) {
	p.Advance(s.par.MailboxWrite) // same MMIO cost class as a mailbox store
	if s.mode == SignalOR {
		s.value |= v
	} else {
		s.value = v
	}
	if s.value != 0 && s.waiter != nil {
		s.k.ReadyIfParked(s.waiter)
	}
}

// Read blocks the SPU until the register is non-zero, then returns and
// clears it (spu_read_signal1/2).
func (s *Signal) Read(p *sim.Proc) uint32 {
	p.Advance(s.par.MailboxRead)
	for s.value == 0 {
		if s.waiter != nil && s.waiter != p {
			p.Fatalf("cellbe: two readers on signal %s", s.name)
		}
		s.waiter = p
		p.Park(fmt.Sprintf("read signal %s", s.name))
	}
	s.waiter = nil
	v := s.value
	s.value = 0
	return v
}

// TryRead returns and clears the register if non-zero, without stalling.
func (s *Signal) TryRead(p *sim.Proc) (uint32, bool) {
	p.Advance(s.par.MailboxRead)
	if s.value == 0 {
		return 0, false
	}
	v := s.value
	s.value = 0
	return v, true
}
