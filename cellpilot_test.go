package cellpilot

import "testing"

// TestQuickstart runs the doc-comment program end to end through the
// public facade.
func TestQuickstart(t *testing.T) {
	clu, err := NewCluster(ClusterSpec{CellNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(clu, Options{})
	var between *Channel
	var got []int32
	send := &SPEProgram{Name: "send", Body: func(ctx *SPECtx) {
		arr := make([]int32, 100)
		for i := range arr {
			arr[i] = int32(i)
		}
		ctx.Write(between, "%100d", arr)
	}}
	recv := &SPEProgram{Name: "recv", Body: func(ctx *SPECtx) {
		arr := make([]int32, 100)
		ctx.Read(between, "%*d", 100, arr)
		got = arr
	}}
	recvPPE := app.CreateProcessOn(1, "recvFunc", func(ctx *Ctx, _ int, arg any) {
		ctx.RunSPE(arg.(*Process), 0, nil)
	}, 0, nil)
	sendSPE := app.CreateSPE(send, app.Main(), 0)
	recvSPE := app.CreateSPE(recv, recvPPE, 0)
	recvPPE.SetArg(recvSPE)
	between = app.CreateChannel(sendSPE, recvSPE)
	if between.Type() != Type5 {
		t.Fatalf("type %v", between.Type())
	}
	if err := app.Run(func(ctx *Ctx) {
		ctx.RunSPE(sendSPE, 0, nil)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestPaperCluster(t *testing.T) {
	clu, err := PaperCluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(clu.Nodes) != 12 || clu.TotalSPEs() != 128 {
		t.Fatalf("paper testbed: %d nodes, %d SPEs", len(clu.Nodes), clu.TotalSPEs())
	}
	if DefaultParams().CellPilotFootprint != 10336 {
		t.Fatal("paper footprint constant wrong")
	}
}

// TestFacadeObservability drives the public tracing and stats surface.
func TestFacadeObservability(t *testing.T) {
	clu, err := NewCluster(ClusterSpec{CellNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(clu, Options{})
	rec := NewTraceRecorder(0)
	app.Trace = rec
	var down, up *Channel
	prog := &SPEProgram{Name: "echo", Body: func(ctx *SPECtx) {
		var v int32
		ctx.Read(down, "%d", &v)
		ctx.Write(up, "%d", v+1)
	}}
	spe := app.CreateSPE(prog, app.Main(), 0)
	down = app.CreateChannel(app.Main(), spe)
	up = app.CreateChannel(spe, app.Main())
	if err := app.Run(func(ctx *Ctx) {
		ctx.RunSPE(spe, 0, nil)
		ctx.Write(down, "%d", int32(41))
		var v int32
		ctx.Read(up, "%d", &v)
		if v != 42 {
			ctx.Abort("got %d", v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) != 4 {
		t.Fatalf("events = %d", len(rec.Events()))
	}
	st := app.Stats()
	if st.VirtualTime <= 0 || len(st.CoPilots) != 1 || len(st.SPEs) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CoPilots[0].WriteReqs != 1 || st.CoPilots[0].ReadReqs != 1 {
		t.Fatalf("copilot counters = %+v", st.CoPilots[0])
	}
}
