// Command stencil runs a classic HPC pattern on CellPilot: a 1-D heat
// diffusion (3-point Jacobi stencil) partitioned across 8 SPE processes
// of one Cell blade. Neighbouring SPEs exchange halo cells every
// iteration over Type 4 channels (Co-Pilot memcpy, no MPI), and PI_MAIN
// scatters the initial field and gathers the final one using the bundle
// operations. The parallel result is checked against a sequential
// reference computed on the PPE.
package main

import (
	"fmt"
	"log"
	"math"

	"cellpilot"
)

const (
	workers    = 8
	cellsPerW  = 64
	iterations = 50
	alpha      = 0.25
)

var (
	scatterCh []*cellpilot.Channel // PI_MAIN -> worker i: initial chunk
	gatherCh  []*cellpilot.Channel // worker i -> PI_MAIN: final chunk
	rightCh   []*cellpilot.Channel // worker i -> worker i+1: right boundary cell
	leftCh    []*cellpilot.Channel // worker i -> worker i-1: left boundary cell
)

// worker is one SPE process: it owns cellsPerW interior cells plus two
// halo cells, and exchanges boundaries with its ring neighbours each
// iteration. The exchange order (even workers send first) avoids a
// circular wait without needing buffering assumptions.
var worker = &cellpilot.SPEProgram{Name: "stencil", Body: func(ctx *cellpilot.SPECtx) {
	id := ctx.Arg()
	u := make([]float64, cellsPerW+2) // [0] and [n+1] are halos
	ctx.Read(scatterCh[id], "%*lf", cellsPerW, u[1:cellsPerW+1])

	next := make([]float64, cellsPerW+2)
	for it := 0; it < iterations; it++ {
		// Halo exchange with the left and right neighbours (fixed
		// boundary cells at the ends of the global domain).
		sendLeft := []float64{u[1]}
		sendRight := []float64{u[cellsPerW]}
		recvLeft := make([]float64, 1)
		recvRight := make([]float64, 1)
		if id%2 == 0 {
			if id+1 < workers {
				ctx.Write(rightCh[id], "%lf", sendRight[0])
				ctx.Read(leftCh[id+1], "%*lf", 1, recvRight)
			}
			if id > 0 {
				ctx.Write(leftCh[id], "%lf", sendLeft[0])
				ctx.Read(rightCh[id-1], "%*lf", 1, recvLeft)
			}
		} else {
			ctx.Read(rightCh[id-1], "%*lf", 1, recvLeft)
			ctx.Write(leftCh[id], "%lf", sendLeft[0])
			if id+1 < workers {
				ctx.Read(leftCh[id+1], "%*lf", 1, recvRight)
				ctx.Write(rightCh[id], "%lf", sendRight[0])
			}
		}
		if id > 0 {
			u[0] = recvLeft[0]
		} else {
			u[0] = 0 // fixed cold boundary
		}
		if id+1 < workers {
			u[cellsPerW+1] = recvRight[0]
		} else {
			u[cellsPerW+1] = 0
		}
		// SPU compute (SIMD on real hardware): charge a little time.
		ctx.P.Advance(2 * cellpilot.Microsecond)
		for i := 1; i <= cellsPerW; i++ {
			next[i] = u[i] + alpha*(u[i-1]-2*u[i]+u[i+1])
		}
		u, next = next, u
	}
	ctx.Write(gatherCh[id], "%*lf", cellsPerW, u[1:cellsPerW+1])
}}

// reference computes the same diffusion sequentially.
func reference(init []float64) []float64 {
	n := len(init)
	u := make([]float64, n+2)
	copy(u[1:], init)
	next := make([]float64, n+2)
	for it := 0; it < iterations; it++ {
		u[0], u[n+1] = 0, 0
		for i := 1; i <= n; i++ {
			next[i] = u[i] + alpha*(u[i-1]-2*u[i]+u[i+1])
		}
		u, next = next, u
	}
	return u[1 : n+1]
}

func main() {
	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 1})
	if err != nil {
		log.Fatal(err)
	}
	app := cellpilot.NewApp(clu, cellpilot.Options{SPECollectives: true})

	var spes []*cellpilot.Process
	for i := 0; i < workers; i++ {
		spes = append(spes, app.CreateSPE(worker, app.Main(), i))
	}
	rightCh = make([]*cellpilot.Channel, workers)
	leftCh = make([]*cellpilot.Channel, workers)
	for i := 0; i < workers; i++ {
		scatterCh = append(scatterCh, app.CreateChannel(app.Main(), spes[i]))
		gatherCh = append(gatherCh, app.CreateChannel(spes[i], app.Main()))
		if i+1 < workers {
			rightCh[i] = app.CreateChannel(spes[i], spes[i+1]) // type 4
		}
		if i > 0 {
			leftCh[i] = app.CreateChannel(spes[i], spes[i-1]) // type 4
		}
	}
	scatter := app.CreateBundle(cellpilot.BundleScatter, scatterCh)
	gather := app.CreateBundle(cellpilot.BundleGather, gatherCh)

	n := workers * cellsPerW
	init := make([]float64, n)
	for i := range init {
		init[i] = math.Sin(float64(i) / float64(n) * math.Pi * 3)
	}

	final := make([]float64, n)
	err = app.Run(func(ctx *cellpilot.Ctx) {
		for i, s := range spes {
			ctx.RunSPE(s, i, nil)
		}
		ctx.Scatter(scatter, fmt.Sprintf("%%%dlf", cellsPerW), init)
		ctx.Gather(gather, fmt.Sprintf("%%%dlf", cellsPerW), final)
	})
	if err != nil {
		log.Fatal(err)
	}

	want := reference(init)
	var maxErr float64
	for i := range want {
		if d := math.Abs(final[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("stencil: %d cells, %d iterations on %d SPEs\n", n, iterations, workers)
	fmt.Printf("max deviation from sequential reference: %g\n", maxErr)
	fmt.Printf("virtual time: %s\n", clu.K.Now())
	if maxErr > 1e-12 {
		log.Fatal("parallel result diverged from the reference")
	}
	fmt.Println("OK")
}
