// Command deadlock demonstrates Pilot's integrated deadlock detection
// (the paper's "-pisvc=d" option, which consumes one MPI process): two
// processes that each PI_Read from the other form a circular wait, and
// instead of a mysterious hang the run aborts with a diagnostic naming
// the deadlocked processes and channels.
package main

import (
	"fmt"
	"log"

	"cellpilot"
)

func main() {
	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	// DeadlockDetection is the -pisvc=d equivalent.
	app := cellpilot.NewApp(clu, cellpilot.Options{DeadlockDetection: true})

	var toPeer, toMain *cellpilot.Channel
	peer := app.CreateProcessOn(1, "peer", func(ctx *cellpilot.Ctx, _ int, _ any) {
		var v int32
		ctx.Read(toPeer, "%d", &v) // waits for PI_MAIN to write...
		ctx.Write(toMain, "%d", v)
	}, 0, nil)
	toPeer = app.CreateChannel(app.Main(), peer)
	toMain = app.CreateChannel(peer, app.Main())

	err = app.Run(func(ctx *cellpilot.Ctx) {
		var v int32
		ctx.Read(toMain, "%d", &v) // ...while PI_MAIN waits for peer.
		ctx.Write(toPeer, "%d", v)
	})
	if err == nil {
		log.Fatal("expected the deadlock service to abort the run")
	}
	fmt.Println("deadlock service reported:")
	fmt.Println(err)
}
