// Command farm demonstrates Pilot's bundle operations in CellPilot's
// MPMD style on a hybrid cluster: a master broadcasts a work descriptor
// to a farm of PPE/Xeon workers with PI_Broadcast, receives results as
// they become ready using a select bundle (the Unix-select analogy from
// the paper), and finally collects per-worker statistics with PI_Gather.
// Each worker additionally offloads its inner computation to an SPE when
// it runs on a Cell node — the "equal citizens" idea in one program.
package main

import (
	"fmt"
	"log"

	"cellpilot"
)

const (
	workers   = 6
	chunk     = 512
	speRounds = 4
)

var (
	bcastCh  []*cellpilot.Channel
	resultCh []*cellpilot.Channel
	statCh   []*cellpilot.Channel
	speDown  []*cellpilot.Channel
	speUp    []*cellpilot.Channel
)

// speKernel squares a vector chunk on the SPE.
var speKernel = &cellpilot.SPEProgram{Name: "square", Body: func(ctx *cellpilot.SPECtx) {
	id := ctx.Arg()
	for r := 0; r < speRounds; r++ {
		vec := make([]float64, chunk)
		ctx.Read(speDown[id], "%*lf", chunk, vec)
		for i, v := range vec {
			vec[i] = v * v
		}
		ctx.Write(speUp[id], "%*lf", chunk, vec)
	}
}}

func workerBody(ctx *cellpilot.Ctx, index int, arg any) {
	var lo, hi int32
	ctx.Read(bcastCh[index], "%d %d", &lo, &hi) // receive the broadcast
	spe := arg.(*cellpilot.Process)
	onCell := spe != nil
	if onCell {
		ctx.RunSPE(spe, index, nil)
	}
	sum := 0.0
	for r := 0; r < speRounds; r++ {
		vec := make([]float64, chunk)
		for i := range vec {
			vec[i] = float64(int(lo) + index + i + r)
		}
		if onCell {
			ctx.Write(speDown[index], "%*lf", chunk, vec)
			ctx.Read(speUp[index], "%*lf", chunk, vec)
		} else {
			for i, v := range vec {
				vec[i] = v * v
			}
		}
		for _, v := range vec {
			sum += v
		}
	}
	ctx.Write(resultCh[index], "%lf", sum)
	ctx.Write(statCh[index], "%2d", []int32{int32(index), int32(speRounds * chunk)})
}

func main() {
	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2, XeonNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	app := cellpilot.NewApp(clu, cellpilot.Options{})
	var procs []*cellpilot.Process
	for i := 0; i < workers; i++ {
		node := i % len(clu.Nodes)
		procs = append(procs, app.CreateProcessOn(node, fmt.Sprintf("worker%d", i), workerBody, i, nil))
	}
	speDown = make([]*cellpilot.Channel, workers)
	speUp = make([]*cellpilot.Channel, workers)
	for i, p := range procs {
		bcastCh = append(bcastCh, app.CreateChannel(app.Main(), p))
		resultCh = append(resultCh, app.CreateChannel(p, app.Main()))
		statCh = append(statCh, app.CreateChannel(p, app.Main()))
		if i%len(clu.Nodes) < 2 { // Cell nodes host an SPE helper
			spe := app.CreateSPE(speKernel, p, i)
			p.SetArg(spe)
			speDown[i] = app.CreateChannel(p, spe)
			speUp[i] = app.CreateChannel(spe, p)
		} else {
			p.SetArg((*cellpilot.Process)(nil))
		}
	}
	bcast := app.CreateBundle(cellpilot.BundleBroadcast, bcastCh)
	sel := app.CreateBundle(cellpilot.BundleSelect, resultCh)
	gather := app.CreateBundle(cellpilot.BundleGather, statCh)

	err = app.Run(func(ctx *cellpilot.Ctx) {
		// One PI_Broadcast; each worker just PI_Reads (MPMD, unlike
		// MPI_Bcast where all 51 processes call the collective).
		ctx.Broadcast(bcast, "%d %d", int32(0), int32(chunk))
		// Collect results in completion order via the select bundle.
		total := 0.0
		for done := 0; done < workers; done++ {
			i := ctx.Select(sel)
			var s float64
			ctx.Read(resultCh[i], "%lf", &s)
			total += s
			fmt.Printf("worker %d finished (running total %.0f)\n", i, total)
		}
		// Gather per-worker statistics in one call.
		stats := make([]int32, 2*workers)
		ctx.Gather(gather, "%2d", stats)
		for i := 0; i < workers; i++ {
			fmt.Printf("worker %d processed %d elements\n", stats[2*i], stats[2*i+1])
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("farm finished in %s of virtual time\n", clu.K.Now())
}
