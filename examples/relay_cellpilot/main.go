// Command relay_cellpilot is the paper's "longer example": three channel
// transfers carrying an array of 100 integers from an SPE process to its
// parent PPE, from there to another node's PPE, and from there to that
// node's SPE. The paper reports this program at 80 lines with CellPilot
// versus 186 hand-coded against the SDK and 114 with DaCS; this file and
// its two siblings are the executable versions of that comparison
// (cellpilot-bench -exp loc counts them).
package main

import (
	"fmt"
	"log"

	"cellpilot"
)

const n = 100

var (
	speToPPE *cellpilot.Channel // hop 1: SPE A -> its parent PPE (type 2)
	ppeToPPE *cellpilot.Channel // hop 2: PPE A -> PPE B (type 1)
	ppeToSPE *cellpilot.Channel // hop 3: PPE B -> SPE B (type 2)
	produce  = &cellpilot.SPEProgram{Name: "produce", Body: produceBody}
	consume  = &cellpilot.SPEProgram{Name: "consume", Body: consumeBody}
)

func produceBody(ctx *cellpilot.SPECtx) {
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i * i)
	}
	ctx.Write(speToPPE, "%100d", data)
}

func consumeBody(ctx *cellpilot.SPECtx) {
	data := make([]int32, n)
	ctx.Read(ppeToSPE, "%100d", data)
	sum := int64(0)
	for _, v := range data {
		sum += int64(v)
	}
	fmt.Printf("consume SPE received %d ints, sum=%d\n", n, sum)
}

func relayFunc(ctx *cellpilot.Ctx, _ int, arg any) {
	data := make([]int32, n)
	ctx.Read(ppeToPPE, "%100d", data)
	ctx.RunSPE(arg.(*cellpilot.Process), 0, nil)
	ctx.Write(ppeToSPE, "%100d", data)
}

func main() {
	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	app := cellpilot.NewApp(clu, cellpilot.Options{})
	relayPPE := app.CreateProcessOn(1, "relay", relayFunc, 0, nil)
	speA := app.CreateSPE(produce, app.Main(), 0)
	speB := app.CreateSPE(consume, relayPPE, 0)
	relayPPE.SetArg(speB)
	speToPPE = app.CreateChannel(speA, app.Main())
	ppeToPPE = app.CreateChannel(app.Main(), relayPPE)
	ppeToSPE = app.CreateChannel(relayPPE, speB)

	err = app.Run(func(ctx *cellpilot.Ctx) {
		ctx.RunSPE(speA, 0, nil)
		data := make([]int32, n)
		ctx.Read(speToPPE, "%100d", data)
		ctx.Write(ppeToPPE, "%100d", data)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-hop relay done in %s of virtual time\n", clu.K.Now())
}
