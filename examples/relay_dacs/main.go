// Command relay_dacs is the three-hop relay written against the DaCS
// baseline (dacs_remote_mem_create, dacs_put, dacs_wait, dacs_mailbox_*,
// dacs_send_to) — the style the paper reports at 114 lines. DaCS hides
// the DMA tags but still exposes remote-memory handles and the strict
// HE/AE hierarchy, and its 36 KB SPE library squeezes the local store.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/dacs"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

const (
	n      = 100
	nBytes = n * 4
	tagRMA = 3
	mbGo   = 0x60
	mbDone = 0x61
)

func produce(rt *dacs.Runtime, leaf *dacs.Element, rm *dacs.RemoteMem) *sdk.Program {
	return &sdk.Program{Name: "produce", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		size := cellbe.Align(nBytes, 16)
		lsAddr, err := c.SPE.LS.Alloc("out", size, 128)
		if err != nil {
			p.Fatalf("%v", err)
		}
		buf, _ := c.SPE.LS.Window(lsAddr, size)
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint32(buf[i*4:], uint32(i*i))
		}
		if err := leaf.Put(p, rm, 0, lsAddr, size, tagRMA); err != nil {
			p.Fatalf("dacs_put: %v", err)
		}
		leaf.Wait(p, tagRMA)
		leaf.MailboxWrite(p, leaf.Parent, mbDone)
	}}
}

func consume(rt *dacs.Runtime, leaf *dacs.Element, rm *dacs.RemoteMem) *sdk.Program {
	return &sdk.Program{Name: "consume", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		size := cellbe.Align(nBytes, 16)
		lsAddr, err := c.SPE.LS.Alloc("in", size, 128)
		if err != nil {
			p.Fatalf("%v", err)
		}
		if v, _ := leaf.MailboxRead(p, leaf.Parent); v != mbGo {
			p.Fatalf("unexpected mailbox %#x", v)
		}
		if err := leaf.Get(p, rm, 0, lsAddr, size, tagRMA); err != nil {
			p.Fatalf("dacs_get: %v", err)
		}
		leaf.Wait(p, tagRMA)
		buf, _ := c.SPE.LS.Window(lsAddr, size)
		sum := int64(0)
		for i := 0; i < n; i++ {
			sum += int64(int32(binary.BigEndian.Uint32(buf[i*4:])))
		}
		fmt.Printf("consume SPE received %d ints, sum=%d\n", n, sum)
	}}
}

func main() {
	clu, err := cluster.New(cluster.Spec{CellNodes: 2, XeonNodes: 1})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := dacs.NewTopology(clu)
	if err != nil {
		log.Fatal(err)
	}
	heA, heB := rt.Root.Children[0], rt.Root.Children[1]
	leafA, leafB := heA.Children[0], heB.Children[0]

	stagingA, _ := heA.Node.Mem.Alloc(cellbe.Align(nBytes, 16), 128)
	rmA, err := rt.RemoteMemCreate(heA.Node, stagingA, cellbe.Align(nBytes, 16))
	if err != nil {
		log.Fatal(err)
	}
	stagingB, _ := heB.Node.Mem.Alloc(cellbe.Align(nBytes, 16), 128)
	rmB, err := rt.RemoteMemCreate(heB.Node, stagingB, cellbe.Align(nBytes, 16))
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.StartProgram(leafA, produce(rt, leafA, rmA), 0, nil); err != nil {
		log.Fatal(err)
	}
	if err := rt.StartProgram(leafB, consume(rt, leafB, rmB), 0, nil); err != nil {
		log.Fatal(err)
	}

	// DaCSH only allows parent<->child messaging, so the PPE-to-PPE hop
	// must route through the cluster HE: A -> root -> B.
	clu.K.Spawn("heA", func(p *sim.Proc) {
		if v, _ := heA.MailboxRead(p, leafA); v != mbDone {
			p.Fatalf("unexpected mailbox %#x", v)
		}
		win, _ := heA.Node.Mem.Window(stagingA, nBytes)
		if err := heA.SendTo(p, rt.Root, win); err != nil {
			p.Fatalf("dacs_send_to: %v", err)
		}
		rmA.Release()
	})
	clu.K.Spawn("rootHE", func(p *sim.Proc) {
		data, err := rt.Root.RecvFrom(p, heA)
		if err != nil {
			p.Fatalf("dacs_recv_from: %v", err)
		}
		if err := rt.Root.SendTo(p, heB, data); err != nil {
			p.Fatalf("dacs_send_to: %v", err)
		}
	})
	clu.K.Spawn("heB", func(p *sim.Proc) {
		data, err := heB.RecvFrom(p, rt.Root)
		if err != nil {
			p.Fatalf("dacs_recv_from: %v", err)
		}
		win, _ := heB.Node.Mem.Window(stagingB, nBytes)
		copy(win, data)
		heB.MailboxWrite(p, leafB, mbGo)
		leafB.Ctx.Done.Wait(p)
		rmB.Release()
	})
	if err := clu.K.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-hop relay done in %s of virtual time\n", clu.K.Now())
}
