// Command matmul runs block matrix multiplication — the canonical Cell BE
// demonstration — on CellPilot SPE workers, and shows both sides of the
// offload trade-off the paper's latency numbers imply: compute-bound
// problems scale with workers, while small communication-bound ones get
// slower as every extra worker adds serialized Co-Pilot transfers.
package main

import (
	"flag"
	"fmt"
	"log"

	"cellpilot/internal/workload"
)

func main() {
	n := flag.Int("n", 128, "matrix dimension")
	seed := flag.Int64("seed", 21, "input seed")
	flag.Parse()

	fmt.Printf("C = A x B, %dx%d float32, verified against the sequential reference\n\n", *n, *n)
	fmt.Printf("%-8s %-14s %s\n", "workers", "virtual time", "")
	var prev string
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		if *n%w != 0 {
			continue
		}
		res, err := workload.MatMul(workload.MatMulConfig{N: *n, Workers: w, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		want := workload.MatMulSequential(workload.MatMulConfig{N: *n, Seed: *seed})
		for i := range want {
			if res.C[i] != want[i] {
				log.Fatalf("workers=%d: result diverged at %d", w, i)
			}
		}
		note := ""
		if w > 16 {
			note = "(spans two blades: type-3 channels)"
		}
		fmt.Printf("%-8d %-14s %s\n", w, res.Elapsed, note)
		prev = res.Elapsed.String()
	}
	_ = prev
	fmt.Println("\nall results verified")
}
