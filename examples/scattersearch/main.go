// Command scattersearch runs the paper's Section VI case study: a
// parallel scatter search meta-heuristic (here for 0/1 knapsack, a
// classic binary-optimization target) with the improvement step offloaded
// to SPE worker processes over CellPilot channels. It compares the
// parallel run against the identical sequential algorithm and the greedy
// baseline.
package main

import (
	"flag"
	"fmt"
	"log"

	"cellpilot/internal/workload"
)

func main() {
	items := flag.Int("items", 256, "knapsack items")
	workers := flag.Int("workers", 8, "SPE improvement workers")
	iters := flag.Int("iters", 8, "scatter-search iterations")
	seed := flag.Int64("seed", 11, "instance and heuristic seed")
	flag.Parse()

	cfg := workload.ScatterConfig{
		Items: *items, Workers: *workers, Iterations: *iters, Seed: *seed,
	}
	par, err := workload.ScatterSearch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	seq := workload.ScatterSearchSequential(cfg)

	fmt.Printf("knapsack: %d items, seed %d\n", *items, *seed)
	fmt.Printf("greedy baseline value:     %d\n", par.GreedyValue)
	fmt.Printf("sequential scatter search: %d (%d improvements)\n", seq.Best, seq.Evaluations)
	fmt.Printf("CellPilot scatter search:  %d (%d improvements on %d SPEs, %s virtual time)\n",
		par.Best, par.Evaluations, *workers, par.Elapsed)
	if par.Best != seq.Best {
		log.Fatal("parallel and sequential runs diverged")
	}
	fmt.Printf("improvement over greedy:   %+.2f%%\n",
		100*float64(par.Best-par.GreedyValue)/float64(par.GreedyValue))
}
