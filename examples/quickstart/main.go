// Command quickstart is the paper's Figures 3–4 sample program: two Cell
// nodes, each PPE starts one SPE process, and one SPE writes an array of
// 100 integers to the other over a Type 5 channel — relayed through two
// Co-Pilot processes, invisible to this code.
package main

import (
	"fmt"
	"log"

	"cellpilot"
)

var betweenSPEs *cellpilot.Channel

// speSend is the paper's spe_send.c: the code between PI_SPE_PROCESS and
// PI_SPE_END.
var speSend = &cellpilot.SPEProgram{Name: "spe_send", Body: func(ctx *cellpilot.SPECtx) {
	array := make([]int32, 100)
	for i := range array {
		array[i] = int32(i)
	}
	ctx.Write(betweenSPEs, "%100d", array)
}}

// speRecv is spe_recv.c, using the "%*d" argument-supplied length.
var speRecv = &cellpilot.SPEProgram{Name: "spe_recv", Body: func(ctx *cellpilot.SPECtx) {
	array := make([]int32, 100)
	ctx.Read(betweenSPEs, "%*d", 100, array)
	for _, v := range array {
		fmt.Printf("%d ", v)
	}
	fmt.Println()
}}

func main() {
	clu, err := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	app := cellpilot.NewApp(clu, cellpilot.Options{})

	// Configuration phase.
	recvPPE := app.CreateProcessOn(1, "recvFunc", func(ctx *cellpilot.Ctx, _ int, arg any) {
		ctx.RunSPE(arg.(*cellpilot.Process), 0, nil)
	}, 0, nil)
	sendSPE := app.CreateSPE(speSend, app.Main(), 0)
	recvSPE := app.CreateSPE(speRecv, recvPPE, 0)
	recvPPE.SetArg(recvSPE)
	betweenSPEs = app.CreateChannel(sendSPE, recvSPE)

	// Execution phase.
	if err := app.Run(func(ctx *cellpilot.Ctx) {
		ctx.RunSPE(sendSPE, 0, nil)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer complete over %s in %s of virtual time\n",
		betweenSPEs.Type(), clu.K.Now())
}
