// Command relay_sdk is the same three-hop relay as relay_cellpilot —
// SPE A -> parent PPE -> remote PPE -> SPE B — hand-coded directly
// against the simulated Cell SDK (libspe2-style contexts, explicit DMA
// with tag groups and alignment, mailbox handshakes) and raw MPI, with no
// CellPilot. This is the style of code the paper reports at 186 lines,
// full of mfc_put, mfc_read_tag_status, spu_write_out_mbox and friends;
// every buffer address, alignment rule and synchronization step is the
// programmer's problem.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/mpi"
	"cellpilot/internal/sdk"
	"cellpilot/internal/sim"
)

const (
	n        = 100
	nBytes   = n * 4
	dmaAlign = 128 // optimal DMA alignment: quad-word minimum, 128 preferred
	tagOut   = 1
	tagIn    = 2
	mboxDone = 0x00D1
	mboxGo   = 0x00D2
)

// encode packs the int32 array into the staging buffer layout the PPEs
// exchange (big-endian, the Cell's byte order).
func encode(dst []byte, src []int32) {
	for i, v := range src {
		binary.BigEndian.PutUint32(dst[i*4:], uint32(v))
	}
}

func decode(dst []int32, src []byte) {
	for i := range dst {
		dst[i] = int32(binary.BigEndian.Uint32(src[i*4:]))
	}
}

// produceProgram fills an aligned LS buffer, DMAs it to the staging area
// the PPE advertised through the mailbox, and signals completion.
func produceProgram(stagingEA int64) *sdk.Program {
	return &sdk.Program{Name: "produce", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		size := cellbe.Align(nBytes, 16) // DMA size must be a multiple of 16
		lsAddr, err := c.SPE.LS.Alloc("out", size, dmaAlign)
		if err != nil {
			p.Fatalf("LS alloc: %v", err)
		}
		buf, err := c.SPE.LS.Window(lsAddr, size)
		if err != nil {
			p.Fatalf("LS window: %v", err)
		}
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(i * i)
		}
		encode(buf, data)
		// mfc_put to the PPE's staging buffer, then wait on the tag group.
		if err := c.MFCPut(p, lsAddr, stagingEA, size, tagOut); err != nil {
			p.Fatalf("mfc_put: %v", err)
		}
		c.TagWait(p, 1<<tagOut)
		// spu_write_out_mbox: tell the PPE the data is in main storage.
		c.WriteOutMbox(p, mboxDone)
	}}
}

// consumeProgram waits for the PPE's go signal, DMAs the staging buffer
// into local store, and checks the payload.
func consumeProgram(stagingEA int64) *sdk.Program {
	return &sdk.Program{Name: "consume", Main: func(c *sdk.Context, _ int, _ any) {
		p := c.Proc
		size := cellbe.Align(nBytes, 16)
		lsAddr, err := c.SPE.LS.Alloc("in", size, dmaAlign)
		if err != nil {
			p.Fatalf("LS alloc: %v", err)
		}
		// spu_read_in_mbox: block until the PPE says the data is staged.
		if v := c.ReadInMbox(p); v != mboxGo {
			p.Fatalf("unexpected mailbox value %#x", v)
		}
		if err := c.MFCGet(p, lsAddr, stagingEA, size, tagIn); err != nil {
			p.Fatalf("mfc_get: %v", err)
		}
		c.TagWait(p, 1<<tagIn)
		buf, _ := c.SPE.LS.Window(lsAddr, size)
		data := make([]int32, n)
		decode(data, buf)
		sum := int64(0)
		for _, v := range data {
			sum += int64(v)
		}
		fmt.Printf("consume SPE received %d ints, sum=%d\n", n, sum)
	}}
}

func main() {
	clu, err := cluster.New(cluster.Spec{CellNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	world, err := mpi.NewWorld(clu, []mpi.Placement{
		{Node: 0, Label: "ppeA"},
		{Node: 1, Label: "ppeB"},
	})
	if err != nil {
		log.Fatal(err)
	}
	nodeA, nodeB := clu.Nodes[0], clu.Nodes[1]

	// Each PPE allocates an aligned staging buffer in main storage.
	stagingA, err := nodeA.Mem.Alloc(cellbe.Align(nBytes, 16), dmaAlign)
	if err != nil {
		log.Fatal(err)
	}
	stagingB, err := nodeB.Mem.Alloc(cellbe.Align(nBytes, 16), dmaAlign)
	if err != nil {
		log.Fatal(err)
	}

	// spe_context_create / spe_program_load on each node.
	speA, _ := nodeA.SPE(0)
	ctxA, err := sdk.ContextCreate(clu.K, speA)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctxA.Load(produceProgram(stagingA), 0); err != nil {
		log.Fatal(err)
	}
	speB, _ := nodeB.SPE(0)
	ctxB, err := sdk.ContextCreate(clu.K, speB)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctxB.Load(consumeProgram(stagingB), 0); err != nil {
		log.Fatal(err)
	}

	// PPE A: run the producer SPE, wait for its mailbox, forward the
	// staging buffer to PPE B over MPI.
	clu.K.Spawn("ppeA", func(p *sim.Proc) {
		if err := ctxA.Run(0, nil); err != nil {
			p.Fatalf("spe_context_run: %v", err)
		}
		if v := ctxA.ReadOutMbox(p); v != mboxDone {
			p.Fatalf("unexpected mailbox value %#x", v)
		}
		win, err := nodeA.Mem.Window(stagingA, nBytes)
		if err != nil {
			p.Fatalf("window: %v", err)
		}
		world.Rank(0).Send(p, 1, 0, win)
		ctxA.Done.Wait(p)
		ctxA.Destroy()
	})

	// PPE B: receive into its staging buffer, start the consumer SPE and
	// signal it through the mailbox.
	clu.K.Spawn("ppeB", func(p *sim.Proc) {
		win, err := nodeB.Mem.Window(stagingB, nBytes)
		if err != nil {
			p.Fatalf("window: %v", err)
		}
		if _, st := world.Rank(1).RecvInto(p, 0, 0, win); st.Count != nBytes {
			p.Fatalf("short receive: %d bytes", st.Count)
		}
		if err := ctxB.Run(0, nil); err != nil {
			p.Fatalf("spe_context_run: %v", err)
		}
		ctxB.WriteInMbox(p, mboxGo)
		ctxB.Done.Wait(p)
		ctxB.Destroy()
	})

	if err := clu.K.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-hop relay done in %s of virtual time\n", clu.K.Now())
}
