// Package cellpilot is a Go reproduction of CellPilot — "CellPilot: A
// Seamless Communication Solution for Hybrid Cell Clusters" (Girard,
// Gardner, Carter, Grewal; ICPP 2011 Workshops) — together with every
// substrate it needs: a discrete-event simulated cluster of Cell BE
// blades and x86 nodes, an MPI-like transport, the libspe2-style SPE
// runtime, the Pilot process/channel library, the Co-Pilot service
// process, and a DaCS baseline.
//
// Programs follow Pilot's two-phase model. The configuration phase
// defines processes (regular or SPE) and the channels binding them:
//
//	clu, _ := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
//	app := cellpilot.NewApp(clu, cellpilot.Options{})
//	var between *cellpilot.Channel
//	send := &cellpilot.SPEProgram{Name: "send", Body: func(ctx *cellpilot.SPECtx) {
//		arr := make([]int32, 100)
//		for i := range arr { arr[i] = int32(i) }
//		ctx.Write(between, "%100d", arr)
//	}}
//	recv := &cellpilot.SPEProgram{Name: "recv", Body: func(ctx *cellpilot.SPECtx) {
//		arr := make([]int32, 100)
//		ctx.Read(between, "%*d", 100, arr)
//	}}
//	recvPPE := app.CreateProcessOn(1, "recvFunc", func(ctx *cellpilot.Ctx, _ int, arg any) {
//		ctx.RunSPE(arg.(*cellpilot.Process), 0, nil)
//	}, 0, nil)
//	sendSPE := app.CreateSPE(send, app.Main(), 0)
//	recvSPE := app.CreateSPE(recv, recvPPE, 0)
//	recvPPE.SetArg(recvSPE)
//	between = app.CreateChannel(sendSPE, recvSPE)
//
// The execution phase starts when Run is called; its argument is the
// PI_MAIN body:
//
//	err := app.Run(func(ctx *cellpilot.Ctx) {
//		ctx.RunSPE(sendSPE, 0, nil)
//	})
//
// Write and Read use Pilot's stdio-inspired format strings ("%d",
// "%100Lf", "%*f"); channels may join PPE, SPE and non-Cell processes in
// any combination, and the library routes each transfer through the
// appropriate mechanism (MPI, Co-Pilot relay, mailbox + effective-address
// copy) without the program changing.
package cellpilot

import (
	"cellpilot/internal/cellbe"
	"cellpilot/internal/cluster"
	"cellpilot/internal/core"
	"cellpilot/internal/fault"
	"cellpilot/internal/flowmap"
	"cellpilot/internal/fmtmsg"
	"cellpilot/internal/metrics"
	"cellpilot/internal/profile"
	"cellpilot/internal/sim"
	"cellpilot/internal/timeline"
	"cellpilot/internal/trace"
)

// Core programming-model types (Pilot/CellPilot).
type (
	// App is one Pilot application over a cluster.
	App = core.App
	// Ctx is a regular process's execution-phase handle.
	Ctx = core.Ctx
	// SPECtx is an SPE process's execution-phase handle.
	SPECtx = core.SPECtx
	// Process is a Pilot process (regular or SPE).
	Process = core.Process
	// Channel is a point-to-point message conduit bound to a process pair.
	Channel = core.Channel
	// Bundle is a channel set with a common endpoint for collective use.
	Bundle = core.Bundle
	// SPEProgram is an SPE executable (spe_program_handle_t equivalent).
	SPEProgram = core.SPEProgram
	// Options configure an App (deadlock service, placement, ablations).
	Options = core.Options
	// ProcessFunc is a regular process body.
	ProcessFunc = core.ProcessFunc
	// SPEFunc is an SPE process body.
	SPEFunc = core.SPEFunc
	// ChannelType is the Table I channel taxonomy.
	ChannelType = core.ChannelType
	// BundleKind is a bundle's declared collective usage.
	BundleKind = core.BundleKind
)

// Machine types.
type (
	// Cluster is a simulated hybrid machine.
	Cluster = cluster.Cluster
	// ClusterSpec describes a cluster to build.
	ClusterSpec = cluster.Spec
	// Params is the calibrated timing/size table.
	Params = cellbe.Params
	// LongDouble is the 16-byte PPC long double ("%Lf" elements).
	LongDouble = fmtmsg.LongDoubleVal
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Channel types (paper Table I).
const (
	Type1 = core.Type1
	Type2 = core.Type2
	Type3 = core.Type3
	Type4 = core.Type4
	Type5 = core.Type5
)

// Bundle kinds. Broadcast, gather and select are the Pilot V1.2
// operations the paper describes; scatter and reduce arrived in later
// Pilot versions and are provided for completeness.
const (
	BundleBroadcast = core.BundleBroadcast
	BundleGather    = core.BundleGather
	BundleSelect    = core.BundleSelect
	BundleScatter   = core.BundleScatter
	BundleReduce    = core.BundleReduce
)

// ReduceOp is an elementwise reduction operator for Ctx.Reduce.
type ReduceOp = core.ReduceOp

// Reduction operators.
const (
	OpSum = core.OpSum
	OpMin = core.OpMin
	OpMax = core.OpMax
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Observability types.
type (
	// Stats is the post-run utilization report (App.Stats).
	Stats = core.Stats
	// CoPilotStats is one Co-Pilot's service counters.
	CoPilotStats = core.CoPilotStats
	// SPEStats is one SPE process's local-store usage.
	SPEStats = core.SPEStats
	// TraceRecorder records channel operations at zero virtual cost;
	// attach one via App.Trace.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded operation.
	TraceEvent = trace.Event
	// Span is one channel transfer reconstructed from its phase events
	// (TraceRecorder.Spans).
	Span = trace.Span
	// PhaseEvent is one stage of a transfer (mailbox, Co-Pilot, relay…).
	PhaseEvent = trace.PhaseEvent
	// Meter aggregates latency/bandwidth histograms and blocked-time
	// attribution at zero virtual cost; attach one via App.Metrics.
	Meter = core.Meter
	// ChannelTypeMetrics is one channel type's aggregate in Stats.
	ChannelTypeMetrics = core.ChannelTypeMetrics
	// ProcTime is one process's compute/blocked time split in Stats.
	ProcTime = core.ProcTime
	// LinkUtil is one interconnect link's occupancy/saturation in Stats.
	LinkUtil = core.LinkUtil
	// Profiler attributes every process's virtual lifetime into exclusive
	// buckets (compute, pack, mailbox, Co-Pilot, MPI, fault backoff);
	// attach one via App.Profile, read folded stacks or pprof after Run.
	Profiler = profile.Profiler
	// Flight is the always-on bounded ring buffer of recent phase events
	// (App.Flight); its tail rides on fault diagnostics automatically.
	Flight = trace.Flight
	// MetricsRegistry is the named counter/gauge/histogram store behind a
	// Meter (Meter.Registry, Stats.Registry).
	MetricsRegistry = metrics.Registry
	// MetricsPublisher serves registry snapshots over HTTP (OpenMetrics
	// text at /metrics, JSON at /metrics.json, timeline at
	// /timeline.json) without racing the run.
	MetricsPublisher = metrics.Publisher
	// Timeline records windowed time-series of the run's gauges and
	// counters against the virtual clock; attach one via App.Timeline.
	Timeline = timeline.Recorder
	// TimelineReport is the analyzed timeline (Stats.Timeline): per-series
	// peak/mean/p95, burst runs and per-fault recovery times.
	TimelineReport = timeline.Report
	// Flowmap classifies every delivery into a flow (src, dst, channel
	// type, route) and aggregates the node×node traffic matrix, per-hop
	// attribution, and heavy-hitter table; attach one via App.Flows.
	Flowmap = flowmap.Map
	// FlowReport is the analyzed flow observatory (Stats.Flows): traffic
	// matrix, top-K flows, per-route and per-resource breakdowns.
	FlowReport = flowmap.Report
	// FlowKey identifies one flow.
	FlowKey = flowmap.Key
)

// Robustness types (fault injection, timeouts, graceful degradation).
type (
	// FaultPlan is a deterministic fault schedule for one run: timed
	// events plus per-link loss/delay/corruption policies, all driven by
	// the virtual clock and a seeded RNG.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fault (node crash, SPE/Co-Pilot kill,
	// mailbox drop or stall).
	FaultEvent = fault.Event
	// FaultKind discriminates FaultEvent.
	FaultKind = fault.Kind
	// LinkPolicy is a per-link probabilistic drop/delay/corrupt policy.
	LinkPolicy = fault.LinkPolicy
	// FaultInjector executes a FaultPlan against one run; pass it in
	// Options.Faults.
	FaultInjector = fault.Injector
	// FaultCounts carries the injector's fault and reaction counters.
	FaultCounts = fault.Counts
	// ChannelFault is the structured error a channel operation returns
	// (TryRead/TryWrite) or App.Run reports when a fault or timeout hit
	// the operation.
	ChannelFault = core.ChannelFault
	// FaultSummary is App.Run's error when a hardened run completed
	// degraded: the processes killed and the operation faults raised.
	FaultSummary = core.FaultSummary
	// FaultStats is the fault section of Stats.
	FaultStats = core.FaultStats
)

// Fault event kinds.
const (
	FaultCrashNode    = fault.CrashNode
	FaultKillSPE      = fault.KillSPE
	FaultKillCoPilot  = fault.KillCoPilot
	FaultMailboxDrop  = fault.MailboxDrop
	FaultMailboxStall = fault.MailboxStall
)

// NewFaultInjector builds the executor for a fault plan. Create one per
// run (injectors are single-use) and set it as Options.Faults.
func NewFaultInjector(plan FaultPlan) *FaultInjector { return fault.NewInjector(plan) }

// NewTraceRecorder creates a recorder keeping at most limit events
// (0 = unlimited).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// NewMeter creates an empty metrics aggregator for App.Metrics.
func NewMeter() *Meter { return core.NewMeter() }

// NewTimeline creates a windowed telemetry recorder for App.Timeline
// (window 0 selects the default 100µs bucket).
func NewTimeline(window Time) *Timeline { return timeline.New(window) }

// NewFlowmap creates a flow observatory for App.Flows (maxFlows 0 selects
// the default bounded flow-table size; overflow past the bound folds into
// one exact overflow bucket, totals stay exact).
func NewFlowmap(maxFlows int) *Flowmap { return flowmap.New(maxFlows) }

// NewProfiler creates an empty virtual-time profiler for App.Profile.
func NewProfiler() *Profiler { return profile.New() }

// NewMetricsPublisher creates a publisher for serving metric snapshots
// over HTTP; wire its Handler into an http.Server and call Publish with a
// registry whenever fresh values should become visible.
func NewMetricsPublisher() *MetricsPublisher { return metrics.NewPublisher() }

// NewCluster builds a simulated hybrid cluster.
func NewCluster(spec ClusterSpec) (*Cluster, error) { return cluster.New(spec) }

// PaperCluster builds the paper's Section V testbed: 8 dual-PowerXCell 8i
// blades plus 4 Xeon nodes on gigabit Ethernet.
func PaperCluster() (*Cluster, error) { return cluster.New(cluster.PaperSpec()) }

// NewApp starts a Pilot application's configuration phase on a cluster.
func NewApp(c *Cluster, opts Options) *App { return core.NewApp(c, opts) }

// DefaultParams returns the timing calibration fitted to paper Table II.
func DefaultParams() *Params { return cellbe.DefaultParams() }
