package cellpilot_test

import (
	"fmt"

	"cellpilot"
)

// The paper's Figures 3-4 program: an SPE on one Cell node writes 100
// integers to an SPE on another over a Type 5 channel, relayed through
// two Co-Pilot processes.
func Example() {
	clu, _ := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	app := cellpilot.NewApp(clu, cellpilot.Options{})

	var betweenSPEs *cellpilot.Channel
	speSend := &cellpilot.SPEProgram{Name: "spe_send", Body: func(ctx *cellpilot.SPECtx) {
		arr := make([]int32, 100)
		for i := range arr {
			arr[i] = int32(i)
		}
		ctx.Write(betweenSPEs, "%100d", arr)
	}}
	speRecv := &cellpilot.SPEProgram{Name: "spe_recv", Body: func(ctx *cellpilot.SPECtx) {
		arr := make([]int32, 100)
		ctx.Read(betweenSPEs, "%*d", 100, arr)
		fmt.Println("sum:", sum(arr))
	}}

	recvPPE := app.CreateProcessOn(1, "recvFunc", func(ctx *cellpilot.Ctx, _ int, arg any) {
		ctx.RunSPE(arg.(*cellpilot.Process), 0, nil)
	}, 0, nil)
	sendSPE := app.CreateSPE(speSend, app.Main(), 0)
	recvSPE := app.CreateSPE(speRecv, recvPPE, 0)
	recvPPE.SetArg(recvSPE)
	betweenSPEs = app.CreateChannel(sendSPE, recvSPE)

	if err := app.Run(func(ctx *cellpilot.Ctx) {
		ctx.RunSPE(sendSPE, 0, nil)
	}); err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum: 4950
}

func sum(a []int32) (s int64) {
	for _, v := range a {
		s += int64(v)
	}
	return s
}

// Bundles follow Pilot's MPMD convention: only the common endpoint calls
// the collective; the other ends use plain Read/Write.
func ExampleCtx_Broadcast() {
	clu, _ := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 1, XeonNodes: 2})
	app := cellpilot.NewApp(clu, cellpilot.Options{})

	var chans []*cellpilot.Channel
	worker := func(ctx *cellpilot.Ctx, index int, _ any) {
		var v int32
		ctx.Read(chans[index], "%d", &v) // a plain read receives the broadcast
		fmt.Printf("worker %d got %d\n", index, v)
	}
	var ws []*cellpilot.Process
	for i := 0; i < 3; i++ {
		ws = append(ws, app.CreateProcessOn(i, "w", worker, i, nil))
	}
	chans = app.CreateChannels(app.Main(), ws)
	bundle := app.CreateBundle(cellpilot.BundleBroadcast, chans)

	app.Run(func(ctx *cellpilot.Ctx) {
		ctx.Broadcast(bundle, "%d", int32(7))
	})
	// Unordered output: worker 0 got 7
	// worker 1 got 7
	// worker 2 got 7
}

// Misuse is caught at run time with a diagnostic naming the offending
// source line — the error class Pilot exists to eliminate.
func ExampleCtx_Read_mismatch() {
	clu, _ := cellpilot.NewCluster(cellpilot.ClusterSpec{CellNodes: 2})
	app := cellpilot.NewApp(clu, cellpilot.Options{})
	reader := app.CreateProcessOn(1, "reader", func(ctx *cellpilot.Ctx, _ int, arg any) {
		var f float32
		ctx.Read(arg.(*cellpilot.Channel), "%f", &f) // writer sends %d
	}, 0, nil)
	ch := app.CreateChannel(app.Main(), reader)
	reader.SetArg(ch)
	err := app.Run(func(ctx *cellpilot.Ctx) {
		ctx.Write(ch, "%d", int32(1))
	})
	fmt.Println(err != nil)
	// Output: true
}
